package wire

import (
	"bytes"
	"io"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
)

func testEvents(t *testing.T) []core.Event {
	t.Helper()
	macS := packet.MustMAC("02:00:00:00:00:0a")
	macD := packet.MustMAC("02:00:00:00:00:0b")
	ipS := packet.MustIPv4("10.0.0.1")
	ipD := packet.MustIPv4("10.0.0.2")
	tcp := packet.NewTCP(macS, macD, ipS, ipD, 40000, 80, packet.FlagSYN, []byte("hi"))
	arp := packet.NewARPRequest(macS, ipS, ipD)
	base := time.Unix(1700000000, 123456789)
	return []core.Event{
		{Kind: core.KindArrival, Time: base, SwitchID: 3, PacketID: 101, Packet: tcp, InPort: 2},
		{Kind: core.KindEgress, Time: base.Add(time.Millisecond), SwitchID: 3, PacketID: 101, Packet: tcp, InPort: 2, OutPort: 7},
		{Kind: core.KindEgress, Time: base.Add(2 * time.Millisecond), SwitchID: 3, PacketID: 102, Packet: arp, InPort: 2, OutPort: 4, Multicast: true},
		{Kind: core.KindEgress, Time: base.Add(3 * time.Millisecond), SwitchID: 3, PacketID: 103, Packet: tcp, InPort: 5, Dropped: true},
		{Kind: core.KindOutOfBand, Time: base.Add(4 * time.Millisecond), SwitchID: 3, OOBKind: packet.OOBLinkDown, OOBPort: 9},
	}
}

// TestFrameRoundTrips encodes and decodes every frame type and checks
// field-level equality plus byte-level stability on re-encode.
func TestFrameRoundTrips(t *testing.T) {
	frames := []any{
		Hello{DPID: 42, NextSeq: 7, Version: 1},
		Hello{DPID: 42, NextSeq: 7, Version: 2, Features: FeatureTrace, SentNs: 123456789},
		HelloAck{AckSeq: 6, Version: 1},
		HelloAck{AckSeq: 6, Version: 2, Features: FeatureTrace, RecvNs: 1000, SentNs: 2000},
		Ack{AckSeq: 9000},
		Ack{AckSeq: 9001, SentNs: 77777},
		&Batch{FirstSeq: 11, Events: testEvents(t)},
		&FleetConfig{Epoch: 3},
		&FleetConfig{Epoch: 4, Members: []FleetMember{{Addr: "10.0.0.1:9190", Weight: 1}, {Addr: "10.0.0.2:9190", Weight: 2}}},
		FleetConfigAck{Epoch: 4},
	}
	for _, f := range frames {
		enc, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("%T: encode: %v", f, err)
		}
		dec, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", f, err)
		}
		if n != len(enc) {
			t.Fatalf("%T: consumed %d of %d bytes", f, n, len(enc))
		}
		re, err := EncodeFrame(dec)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", f, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%T: decode/re-encode changed bytes\nenc: %x\nre:  %x", f, enc, re)
		}
		switch want := f.(type) {
		case Hello:
			if got := dec.(Hello); got != want {
				t.Fatalf("hello round-trip: got %+v want %+v", got, want)
			}
		case HelloAck:
			if got := dec.(HelloAck); got != want {
				t.Fatalf("hello-ack round-trip: got %+v want %+v", got, want)
			}
		case Ack:
			if got := dec.(Ack); got != want {
				t.Fatalf("ack round-trip: got %+v want %+v", got, want)
			}
		case *FleetConfig:
			got := dec.(*FleetConfig)
			if got.Epoch != want.Epoch || len(got.Members) != len(want.Members) {
				t.Fatalf("fleet-config round-trip: got %+v want %+v", got, want)
			}
			for i := range got.Members {
				if got.Members[i] != want.Members[i] {
					t.Fatalf("fleet member %d round-trip: got %+v want %+v", i, got.Members[i], want.Members[i])
				}
			}
		case FleetConfigAck:
			if got := dec.(FleetConfigAck); got != want {
				t.Fatalf("fleet-config-ack round-trip: got %+v want %+v", got, want)
			}
		case *Batch:
			got := dec.(*Batch)
			if got.FirstSeq != want.FirstSeq || len(got.Events) != len(want.Events) {
				t.Fatalf("batch header round-trip: got seq=%d n=%d want seq=%d n=%d",
					got.FirstSeq, len(got.Events), want.FirstSeq, len(want.Events))
			}
			if got.LastSeq() != want.FirstSeq+uint64(len(want.Events))-1 {
				t.Fatalf("LastSeq = %d", got.LastSeq())
			}
			for i := range got.Events {
				g, w := &got.Events[i], &want.Events[i]
				if g.Kind != w.Kind || !g.Time.Equal(w.Time) || g.SwitchID != w.SwitchID ||
					g.PacketID != w.PacketID || g.InPort != w.InPort || g.OutPort != w.OutPort ||
					g.Dropped != w.Dropped || g.Multicast != w.Multicast ||
					g.OOBKind != w.OOBKind || g.OOBPort != w.OOBPort {
					t.Fatalf("event %d metadata round-trip: got %+v want %+v", i, g, w)
				}
				if (g.Packet == nil) != (w.Packet == nil) {
					t.Fatalf("event %d packet presence mismatch", i)
				}
				if w.Packet != nil && g.Packet.Summary() != w.Packet.Summary() {
					t.Fatalf("event %d packet: got %s want %s", i, g.Packet.Summary(), w.Packet.Summary())
				}
			}
		}
	}
}

// TestReaderStream feeds several frames through one Reader over a byte
// stream and checks clean EOF at the end and ErrUnexpectedEOF mid-frame.
func TestReaderStream(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream, Hello{DPID: 1, NextSeq: 1})
	b, err := AppendBatch(stream, &Batch{FirstSeq: 1, Events: testEvents(t)})
	if err != nil {
		t.Fatal(err)
	}
	stream = AppendAck(b, Ack{AckSeq: 5})

	r := NewReader(bytes.NewReader(stream))
	if f, err := r.Next(); err != nil {
		t.Fatal(err)
	} else if h, ok := f.(Hello); !ok || h.DPID != 1 {
		t.Fatalf("frame 1: %#v", f)
	}
	if f, err := r.Next(); err != nil {
		t.Fatal(err)
	} else if bt, ok := f.(*Batch); !ok || len(bt.Events) != 5 {
		t.Fatalf("frame 2: %#v", f)
	}
	if f, err := r.Next(); err != nil {
		t.Fatal(err)
	} else if a, ok := f.(Ack); !ok || a.AckSeq != 5 {
		t.Fatalf("frame 3: %#v", f)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}

	cut := NewReader(bytes.NewReader(stream[:len(stream)-1]))
	cut.Next() // hello
	cut.Next() // batch
	if _, err := cut.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-frame cut: want ErrUnexpectedEOF, got %v", err)
	}
}

// TestDecodeRejects exercises the strict-decode error paths.
func TestDecodeRejects(t *testing.T) {
	hello := AppendHello(nil, Hello{DPID: 1, NextSeq: 1})

	t.Run("partial", func(t *testing.T) {
		if _, _, err := DecodeFrame(hello[:3]); err != io.ErrUnexpectedEOF {
			t.Fatalf("short prefix: %v", err)
		}
		if _, _, err := DecodeFrame(hello[:len(hello)-2]); err != io.ErrUnexpectedEOF {
			t.Fatalf("short payload: %v", err)
		}
	})
	t.Run("oversize", func(t *testing.T) {
		bad := []byte{0xff, 0xff, 0xff, 0xff}
		if _, _, err := DecodeFrame(bad); err == nil || err == io.ErrUnexpectedEOF {
			t.Fatalf("oversize length accepted: %v", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), hello...)
		bad[5] ^= 0xff // first magic byte
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), hello...)
		bad[9], bad[10] = 0xff, 0xfe // version field
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatal("bad version accepted")
		}
	})
	t.Run("unknown-type", func(t *testing.T) {
		bad := append([]byte(nil), hello...)
		bad[4] = 200
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatal("unknown frame type accepted")
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), hello...), 0)
		bad[3]++ // grow declared payload to cover the junk byte
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatal("trailing payload bytes accepted")
		}
	})
	t.Run("advance-marker", func(t *testing.T) {
		// An empty batch is legal: it is the sequence-advance marker that
		// surfaces a loss at the tail of an exporter's stream.
		enc, err := AppendBatch(nil, &Batch{FirstSeq: 42})
		if err != nil {
			t.Fatal(err)
		}
		f, n, err := DecodeFrame(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("marker decode: %v (consumed %d of %d)", err, n, len(enc))
		}
		b, ok := f.(*Batch)
		if !ok || b.FirstSeq != 42 || len(b.Events) != 0 {
			t.Fatalf("marker round-trip = %#v", f)
		}
		if b.LastSeq() != 41 {
			t.Fatalf("marker LastSeq = %d, want FirstSeq-1", b.LastSeq())
		}
	})
	t.Run("unknown-flags", func(t *testing.T) {
		b, err := AppendBatch(nil, &Batch{FirstSeq: 1, Events: testEvents(t)[:1]})
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), b...)
		// payload: type(1) firstSeq(1) count(1) kind(1) flags — flags at
		// offset 4+4.
		bad[8] |= 0x80
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatal("unknown event flags accepted")
		}
	})
	t.Run("flags-on-arrival", func(t *testing.T) {
		evs := testEvents(t)[:1] // arrival
		evs[0].Dropped = true    // nonsense the encoder will serialize
		b, err := AppendBatch(nil, &Batch{FirstSeq: 1, Events: evs})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeFrame(b); err == nil {
			t.Fatal("dropped flag on arrival accepted")
		}
	})
}

// TestAppendBatchZeroAlloc gates the exporter's hot path: with a warm
// destination buffer, serializing a batch must not allocate.
func TestAppendBatchZeroAlloc(t *testing.T) {
	evs := testEvents(t)
	b := &Batch{FirstSeq: 1, Events: evs}
	buf := make([]byte, 0, 8192)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendBatch(buf[:0], b)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendBatch allocates %.1f/op, want 0", allocs)
	}
}
