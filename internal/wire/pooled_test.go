package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// A pooled Reader must decode batches observationally identically to a
// plain Reader, and recycling via Release must not corrupt batches
// decoded afterwards.
func TestPooledReaderMatchesPlainReader(t *testing.T) {
	evs := testEvents(t)
	var stream []byte
	for i := 0; i < 4; i++ {
		b := &Batch{FirstSeq: uint64(1 + i*len(evs)), Events: evs}
		enc, err := EncodeFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, enc...)
	}

	plain := NewReader(bytes.NewReader(stream))
	pooled := NewPooledReader(bytes.NewReader(stream))
	for i := 0; ; i++ {
		fw, errW := plain.Next()
		fp, errP := pooled.Next()
		if (errW == nil) != (errP == nil) {
			t.Fatalf("frame %d: plain err %v, pooled err %v", i, errW, errP)
		}
		if errW == io.EOF {
			break
		}
		if errW != nil {
			t.Fatalf("frame %d: %v", i, errW)
		}
		bw, bp := fw.(*Batch), fp.(*Batch)
		if bw.FirstSeq != bp.FirstSeq || !reflect.DeepEqual(bw.Events, bp.Events) {
			t.Fatalf("frame %d: pooled decode differs from plain decode", i)
		}
		// Release AFTER the comparison: the contract is that the events
		// are valid until then, and invalid after.
		bp.Release()
	}
}

// Release must be a no-op for batches that own their storage, and
// idempotent for pooled ones.
func TestBatchReleaseSafety(t *testing.T) {
	owned := &Batch{FirstSeq: 1, Events: testEvents(t)}
	owned.Release()
	if owned.Events == nil {
		t.Fatal("Release cleared an owned batch's events")
	}

	enc, err := EncodeFrame(&Batch{FirstSeq: 1, Events: testEvents(t)})
	if err != nil {
		t.Fatal(err)
	}
	r := NewPooledReader(bytes.NewReader(enc))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	b := f.(*Batch)
	b.Release()
	if b.Events != nil {
		t.Fatal("Release left a pooled batch's events visible")
	}
	b.Release() // second call must not double-Put
}
