package wire

import (
	"bytes"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
)

// FuzzWireRoundTrip is the codec's canonicality contract, the same
// fixed-point shape as the packet codec's FuzzCodecRoundTrip: any input
// DecodeFrame accepts must re-encode to bytes that decode to the same
// frame and re-encode identically. Non-minimal varints in a fuzzed
// input normalize at the first re-encode; from then on the bytes are a
// fixed point. This is what lets the collector deduplicate replayed
// batches and the ledger trust sequence arithmetic: there is exactly
// one wire form per frame.
func FuzzWireRoundTrip(f *testing.F) {
	seed := func(frame any) []byte {
		enc, err := EncodeFrame(frame)
		if err != nil {
			f.Fatal(err)
		}
		return enc
	}
	macS := packet.MustMAC("02:00:00:00:00:0a")
	macD := packet.MustMAC("02:00:00:00:00:0b")
	ipS := packet.MustIPv4("10.0.0.1")
	ipD := packet.MustIPv4("10.0.0.2")
	tcp := packet.NewTCP(macS, macD, ipS, ipD, 40000, 80, packet.FlagSYN, []byte("hi"))
	udp := packet.NewUDP(macS, macD, ipS, ipD, 40000, 53, []byte{1, 2})
	base := time.Unix(1700000000, 0)

	f.Add(seed(Hello{DPID: 1, NextSeq: 1}))
	f.Add(seed(Hello{DPID: 1<<64 - 1, NextSeq: 1 << 40}))
	f.Add(seed(HelloAck{AckSeq: 0}))
	f.Add(seed(Ack{AckSeq: 123456}))
	f.Add(seed(&Batch{FirstSeq: 1, Events: []core.Event{
		{Kind: core.KindArrival, Time: base, SwitchID: 2, PacketID: 9, Packet: tcp, InPort: 1},
		{Kind: core.KindEgress, Time: base.Add(time.Millisecond), SwitchID: 2, PacketID: 9, Packet: tcp, InPort: 1, OutPort: 3},
	}}))
	f.Add(seed(&Batch{FirstSeq: 7, Events: []core.Event{
		{Kind: core.KindEgress, Time: base, SwitchID: 1, PacketID: 4, Packet: udp, InPort: 2, Dropped: true},
		{Kind: core.KindEgress, Time: base, SwitchID: 1, PacketID: 5, Packet: udp, InPort: 2, OutPort: 6, Multicast: true},
		{Kind: core.KindOutOfBand, Time: base, SwitchID: 1, OOBKind: packet.OOBLinkUp, OOBPort: 6},
	}}))
	// An empty batch is the sequence-advance marker exporters use to
	// surface tail loss.
	f.Add(seed(&Batch{FirstSeq: 99}))
	// A metadata-only event (no packet) exercises the hasPacket=0 path.
	f.Add(seed(&Batch{FirstSeq: 3, Events: []core.Event{
		{Kind: core.KindArrival, Time: base, SwitchID: 5, PacketID: 11, InPort: 4},
	}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		f1, n, err := DecodeFrame(data)
		if err != nil {
			return // invalid inputs are rejected, not round-tripped
		}
		e1, err := EncodeFrame(f1)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v\ninput (%d consumed): %x", err, n, data)
		}
		f2, n2, err := DecodeFrame(e1)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v\ne1: %x", err, e1)
		}
		if n2 != len(e1) {
			t.Fatalf("re-encoded frame not fully consumed: %d of %d", n2, len(e1))
		}
		e2, err := EncodeFrame(f2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding not a fixed point\ne1: %x\ne2: %x", e1, e2)
		}
	})
}
