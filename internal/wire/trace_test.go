package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs/tracer"
)

// traceEvents returns packetless events with spans on 0 and 2: one
// fully switch-stamped, one partially, plus a collector-side stamp the
// wire must mask out. Event 1 is unsampled.
func traceEvents() []core.Event {
	base := time.Unix(1700000000, 0)
	evs := []core.Event{
		{Kind: core.KindArrival, Time: base, SwitchID: 3, PacketID: 101, InPort: 2},
		{Kind: core.KindEgress, Time: base, SwitchID: 3, PacketID: 101, InPort: 2, OutPort: 7},
		{Kind: core.KindEgress, Time: base, SwitchID: 3, PacketID: 102, InPort: 2, Dropped: true},
	}
	s0 := &tracer.Span{Key: tracer.Key(3, 101, 0), DPID: 3, PacketID: 101}
	s0.StampAt(tracer.StageIngress, 1000)
	s0.StampAt(tracer.StageEnqueue, 1200)
	s0.StampAt(tracer.StageBatchSeal, 1500)
	s0.StampAt(tracer.StageWireSend, 1700)
	s0.StampAt(tracer.StageVerdict, 1900) // local engine: must not ship
	evs[0].Trace = s0
	s2 := &tracer.Span{Key: tracer.Key(3, 102, 1), DPID: 3, PacketID: 102, Kind: 1}
	s2.StampAt(tracer.StageEnqueue, 2100)
	s2.StampAt(tracer.StageWireSend, 2300)
	evs[2].Trace = s2
	return evs
}

func TestTracedBatchRoundTrip(t *testing.T) {
	b := &Batch{FirstSeq: 11, Events: traceEvents(), Traced: true,
		ClockOffsetNs: -12345, ClockDispNs: 678}
	enc, err := EncodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	dec, n, err := DecodeFrame(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v (consumed %d of %d)", err, n, len(enc))
	}
	got, ok := dec.(*Batch)
	if !ok || !got.Traced {
		t.Fatalf("decoded %#v, want traced batch", dec)
	}
	if got.ClockOffsetNs != -12345 || got.ClockDispNs != 678 {
		t.Fatalf("clock = %d/%d", got.ClockOffsetNs, got.ClockDispNs)
	}
	re, err := EncodeFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("traced batch not byte-stable\nenc: %x\nre:  %x", enc, re)
	}
	// Span adoption: marks survive, flagged remote, non-switch stages
	// masked out, unsampled events stay span-less.
	sp := got.Events[0].Trace
	if sp == nil || sp.Key != tracer.Key(3, 101, 0) {
		t.Fatalf("event 0 span = %+v", sp)
	}
	if sp.Mark(tracer.StageIngress) != 1000 || sp.Mark(tracer.StageWireSend) != 1700 {
		t.Fatalf("event 0 marks: ingress=%d wire_send=%d",
			sp.Mark(tracer.StageIngress), sp.Mark(tracer.StageWireSend))
	}
	if sp.Mark(tracer.StageVerdict) != 0 {
		t.Fatal("local verdict stamp leaked onto the wire")
	}
	if sp.StageMask() != tracer.SwitchStageMask {
		t.Fatalf("event 0 mask = %08b", sp.StageMask())
	}
	if got.Events[1].Trace != nil {
		t.Fatal("unsampled event grew a span")
	}
	s2 := got.Events[2].Trace
	if s2 == nil || s2.Mark(tracer.StageEnqueue) != 2100 || s2.Mark(tracer.StageBatchSeal) != 0 {
		t.Fatalf("event 2 span = %+v", s2)
	}
	// Adopted spans must honor the clock estimate: the deltas computed
	// at Finish shift remote marks by the shipped offset.
	s2.SetClock(got.ClockOffsetNs, got.ClockDispNs)
	tr := tracer.New(tracer.Config{SampleN: 1})
	s2.StampAt(tracer.StageCollectorRecv, 2300-12345+500)
	tr.Finish(s2)
	if recs := tr.Snapshot(); recs[0].StageNs["collector_recv"] != 500 {
		t.Fatalf("wire flight = %d, want 500", recs[0].StageNs["collector_recv"])
	}
}

// TestTracedBatchUnsampled: Traced batches with no sampled events (and
// sequence-advance markers) still carry a well-formed, empty block.
func TestTracedBatchUnsampled(t *testing.T) {
	for _, b := range []*Batch{
		{FirstSeq: 5, Traced: true, ClockOffsetNs: 9},
		{FirstSeq: 5, Traced: true, Events: []core.Event{
			{Kind: core.KindArrival, Time: time.Unix(1, 0), SwitchID: 1, PacketID: 1, InPort: 1},
		}},
	} {
		enc, err := EncodeFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		got := dec.(*Batch)
		if !got.Traced || got.ClockOffsetNs != b.ClockOffsetNs || len(got.Events) != len(b.Events) {
			t.Fatalf("round-trip = %+v", got)
		}
		for i := range got.Events {
			if got.Events[i].Trace != nil {
				t.Fatal("span materialized from empty trace block")
			}
		}
	}
}

// buildTraced hand-assembles a TracedBatch frame around one packetless
// event so reject tests can plant precise corruption in the block.
func buildTraced(t *testing.T, block []byte) []byte {
	t.Helper()
	payload := []byte{byte(FrameTracedBatch)}
	payload = binary.AppendUvarint(payload, 1) // FirstSeq
	payload = binary.AppendUvarint(payload, 1) // count
	ev := core.Event{Kind: core.KindArrival, Time: time.Unix(0, 5), SwitchID: 1, PacketID: 1, InPort: 1}
	payload, err := appendEvent(payload, &ev)
	if err != nil {
		t.Fatal(err)
	}
	payload = append(payload, block...)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	return append(frame, payload...)
}

func TestTraceBlockRejects(t *testing.T) {
	entry := func(idx uint64, mask byte, marks ...int64) []byte {
		b := binary.AppendUvarint(nil, idx)
		b = binary.BigEndian.AppendUint64(b, 0xdeadbeef)
		b = append(b, mask)
		for _, m := range marks {
			b = binary.AppendVarint(b, m)
		}
		return b
	}
	header := func(count uint64) []byte {
		b := binary.AppendVarint(nil, 0) // offset
		b = binary.AppendUvarint(b, 0)   // dispersion
		return binary.AppendUvarint(b, count)
	}
	cases := map[string][]byte{
		"count-exceeds-events": header(2),
		"index-out-of-range":   append(header(1), entry(1, 1<<tracer.StageEnqueue, 9)...),
		"zero-mask":            append(header(1), entry(0, 0)...),
		"non-switch-stage":     append(header(1), entry(0, 1<<tracer.StageVerdict, 9)...),
		"zero-mark":            append(header(1), entry(0, 1<<tracer.StageEnqueue, 0)...),
		"truncated-marks":      append(header(1), entry(0, tracer.SwitchStageMask, 9)...),
		"missing-block":        nil,
	}
	for name, block := range cases {
		if _, _, err := DecodeFrame(buildTraced(t, block)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Control: the same scaffolding with a valid block decodes.
	ok := append(header(1), entry(0, 1<<tracer.StageEnqueue, 9)...)
	if _, _, err := DecodeFrame(buildTraced(t, ok)); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

// FuzzTraceBlockRoundTrip extends the codec's canonicality contract to
// TracedBatch frames: any accepted input re-encodes to a fixed point,
// spans included. check.sh runs it as a smoke alongside
// FuzzWireRoundTrip.
func FuzzTraceBlockRoundTrip(f *testing.F) {
	seed := func(frame any) []byte {
		enc, err := EncodeFrame(frame)
		if err != nil {
			f.Fatal(err)
		}
		return enc
	}
	f.Add(seed(&Batch{FirstSeq: 11, Events: traceEvents(), Traced: true,
		ClockOffsetNs: -12345, ClockDispNs: 678}))
	f.Add(seed(&Batch{FirstSeq: 5, Traced: true}))
	f.Add(seed(&Batch{FirstSeq: 1, Events: traceEvents(), Traced: true}))

	f.Fuzz(func(t *testing.T, data []byte) {
		f1, _, err := DecodeFrame(data)
		if err != nil {
			return
		}
		e1, err := EncodeFrame(f1)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		f2, n2, err := DecodeFrame(e1)
		if err != nil || n2 != len(e1) {
			t.Fatalf("decode of re-encoded frame: %v (%d of %d)", err, n2, len(e1))
		}
		e2, err := EncodeFrame(f2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding not a fixed point\ne1: %x\ne2: %x", e1, e2)
		}
	})
}
