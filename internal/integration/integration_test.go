// Package integration exercises the full stack: netsim topologies running
// the monitored network functions, the monitor observing the dataplane,
// traces recorded and replayed, properties loaded from DSL text, and all
// backends fed the same event stream (experiment E9 of DESIGN.md).
package integration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/backend"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/dsl"
	"switchmon/internal/netsim"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("203.0.113.9")
)

// TestFullStackFirewallWithHosts runs the firewall on a simulated network
// with protocol-aware hosts and link latency: a server host answers SYNs,
// the buggy firewall wrongfully drops some returns, and the monitor
// watching the switch catches exactly those.
func TestFullStackFirewallWithHosts(t *testing.T) {
	sched := sim.NewScheduler()
	n := netsim.New(sched)
	n.LinkLatency = time.Millisecond

	sw := n.AddSwitch("fw", 1)
	client := n.AddHost("client", macA, ipA, sw, 1)
	server := n.AddHost("server", macB, ipB, sw, 2)
	server.ServePorts[80] = true

	apps.NewFirewall(sw, 1, 2, 60*time.Second, apps.FirewallFaults{DropValidReturnEvery: 3})

	var viols []*core.Violation
	mon := core.NewMonitor(sched, core.Config{
		Provenance:  core.ProvFull,
		OnViolation: func(v *core.Violation) { viols = append(viols, v) },
	})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	sw.Observe(mon.HandleEvent)

	// The client opens several connections; the server's SYN|ACK returns
	// are the packets the buggy firewall drops.
	for i := 0; i < 9; i++ {
		client.Send(packet.NewTCP(macA, macB, ipA, ipB, uint16(30000+i), 80, packet.FlagSYN, nil))
		sched.RunFor(10 * time.Millisecond)
	}
	if len(viols) != 3 {
		t.Fatalf("violations = %d, want 3 (every 3rd of 9 returns dropped)", len(viols))
	}
	// Full provenance names both stages.
	if len(viols[0].History) != 2 {
		t.Fatalf("history = %+v", viols[0].History)
	}
	// The client still received the non-dropped SYN|ACKs.
	if client.ReceivedCount() != 6 {
		t.Fatalf("client received %d, want 6", client.ReceivedCount())
	}
}

// TestRecordReplayEquivalence records a violating scenario's event stream
// and replays it into a fresh monitor: identical violations, including
// timeout-driven ones.
func TestRecordReplayEquivalence(t *testing.T) {
	run := func(handle func(core.Event)) (*dataplane.Switch, *sim.Scheduler) {
		sched := sim.NewScheduler()
		sw := dataplane.New("s1", sched, 1)
		for i := 1; i <= 4; i++ {
			sw.AddPort(dataplane.PortNo(i), nil)
		}
		apps.NewARPProxy(sw, apps.ARPProxyFaults{NeverReply: true})
		if handle != nil {
			sw.Observe(handle)
		}
		return sw, sched
	}

	// Live pass: record events and count violations.
	rec := &trace.Recorder{}
	liveViols := 0
	liveMon := func() *core.Monitor {
		swLive, schedLive := run(nil)
		m := core.NewMonitor(schedLive, core.Config{OnViolation: func(*core.Violation) { liveViols++ }})
		if err := m.AddProperty(property.CatalogByName(property.DefaultParams(), "arp-proxy-reply")); err != nil {
			t.Fatal(err)
		}
		swLive.Observe(rec.Observe)
		swLive.Observe(m.HandleEvent)
		swLive.Inject(1, packet.NewARPReply(macA, ipA, macB, ipB)) // mapping
		swLive.Inject(2, packet.NewARPRequest(macB, ipB, ipA))     // request
		schedLive.RunFor(5 * time.Second)
		return m
	}()
	_ = liveMon
	if liveViols != 1 {
		t.Fatalf("live violations = %d, want 1", liveViols)
	}

	// Serialize the trace and read it back.
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, rec.Events); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh monitor on a fresh clock.
	sched2 := sim.NewScheduler()
	replayViols := 0
	mon2 := core.NewMonitor(sched2, core.Config{OnViolation: func(*core.Violation) { replayViols++ }})
	if err := mon2.AddProperty(property.CatalogByName(property.DefaultParams(), "arp-proxy-reply")); err != nil {
		t.Fatal(err)
	}
	trace.Replay(sched2, events, mon2.HandleEvent)
	sched2.RunFor(5 * time.Second) // let the deadline fire
	if replayViols != liveViols {
		t.Fatalf("replay violations = %d, live = %d", replayViols, liveViols)
	}
}

// TestDSLPropertyEndToEnd loads a property from DSL text and runs it
// against a live scenario.
func TestDSLPropertyEndToEnd(t *testing.T) {
	src := `
property "no-drops-after-outbound" {
  description "once A talks to B, B's replies must not be dropped"
  on arrival "outgoing" {
    match in_port == 1
    bind $A = ip.src
    bind $B = ip.dst
  }
  on egress "return-dropped" {
    match ip.src == $B
    match ip.dst == $A
    match dropped == 1
  }
}
`
	prop, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	sw := dataplane.New("s1", sched, 1)
	sw.AddPort(1, nil)
	sw.AddPort(2, nil)
	apps.NewFirewall(sw, 1, 2, time.Minute, apps.FirewallFaults{DropValidReturnEvery: 1})
	viols := 0
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
	if err := mon.AddProperty(prop); err != nil {
		t.Fatal(err)
	}
	sw.Observe(mon.HandleEvent)
	sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil))
	sw.Inject(2, packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil))
	if viols != 1 {
		t.Fatalf("violations = %d, want 1", viols)
	}
}

// TestBackendsOnSharedStream subscribes every backend to one switch and
// checks the detection hierarchy: full-visibility backends catch the
// firewall violation, drop-blind ones do not.
func TestBackendsOnSharedStream(t *testing.T) {
	sched := sim.NewScheduler()
	sw := dataplane.New("s1", sched, 1)
	sw.AddPort(1, nil)
	sw.AddPort(2, nil)
	apps.NewFirewall(sw, 1, 2, time.Minute, apps.FirewallFaults{DropValidReturnEvery: 1})

	fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	backends := backend.All(sched)
	installed := map[string]bool{}
	for _, b := range backends {
		err := b.AddProperty(fw)
		installed[b.Name()] = err == nil
		if err == nil {
			bb := b
			sw.Observe(bb.HandleEvent)
		}
	}

	sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil))
	sw.Inject(2, packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil))

	want := map[string]uint64{
		"OpenFlow 1.3":                 0, // accepted at controller, blind to drops
		"OpenFlow 1.5":                 0, // egress tables, but drops never enter them
		"POF and P4":                   1,
		"Varanus":                      1,
		"Static Varanus":               1,
		"Sharded Varanus (multi-core)": 1,
		"Ideal (this paper)":           1,
	}
	for _, b := range backends {
		expect, checked := want[b.Name()]
		if !checked {
			// OpenState/FAST/SNAP reject the property outright.
			if installed[b.Name()] {
				t.Errorf("%s unexpectedly accepted firewall-basic", b.Name())
			}
			continue
		}
		if !installed[b.Name()] {
			t.Errorf("%s rejected firewall-basic", b.Name())
			continue
		}
		if got := b.Violations(); got != expect {
			t.Errorf("%s violations = %d, want %d", b.Name(), got, expect)
		}
	}
}

// TestSplitModeLagCausesMonitorError demonstrates Feature 9's trade-off
// end to end: with split processing and a bounded update queue, a burst
// overflows the queue and the monitor misses a violation the inline
// monitor catches.
func TestSplitModeLagCausesMonitorError(t *testing.T) {
	mkMon := func(sched *sim.Scheduler, mode core.Mode, limit int, count *int) *core.Monitor {
		m := core.NewMonitor(sched, core.Config{
			Mode: mode, SplitFlushLimit: limit,
			OnViolation: func(*core.Violation) { *count++ },
		})
		if err := m.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
			t.Fatal(err)
		}
		return m
	}
	sched := sim.NewScheduler()
	inlineViols, splitViols := 0, 0
	inline := mkMon(sched, core.Inline, 0, &inlineViols)
	split := mkMon(sched, core.Split, 16, &splitViols)

	feed := func(e core.Event) { inline.HandleEvent(e); split.HandleEvent(e) }
	// The critical outgoing packet, then a burst that overflows the split
	// queue before the flush, then the wrongful drop.
	out := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	feed(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 1, Packet: out, InPort: 1})
	for i := 0; i < 40; i++ {
		noise := packet.NewTCP(macA, macB, ipA, packet.IPv4FromUint32(0xc0000000+uint32(i)), uint16(2000+i), 80, packet.FlagACK, nil)
		feed(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: core.PacketID(100 + i), Packet: noise, InPort: 1})
	}
	ret := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	feed(core.Event{Kind: core.KindEgress, Time: sched.Now(), PacketID: 2, Packet: ret, InPort: 2, Dropped: true})
	split.Flush()

	if inlineViols != 1 {
		t.Fatalf("inline violations = %d, want 1", inlineViols)
	}
	if splitViols != 0 {
		t.Fatalf("split violations = %d, want 0 (overflow lost the opening event)", splitViols)
	}
	if split.Stats().DroppedEvents == 0 {
		t.Fatal("split monitor recorded no overflow drops")
	}
}

// TestWholeCatalogueFaultMatrix runs a compact fault matrix: for each
// (scenario, property) pair, the faulty run alerts and the correct run
// stays silent.
func TestWholeCatalogueFaultMatrix(t *testing.T) {
	type scenario struct {
		name  string
		props []string
		run   func(t *testing.T, faulty bool, mon *core.Monitor, sched *sim.Scheduler)
	}
	mkSwitch := func(sched *sim.Scheduler, ports int) *dataplane.Switch {
		sw := dataplane.New("s", sched, 2)
		for i := 1; i <= ports; i++ {
			sw.AddPort(dataplane.PortNo(i), nil)
		}
		return sw
	}
	scenarios := []scenario{
		{
			name:  "learning-switch",
			props: []string{"lswitch-unicast"},
			run: func(t *testing.T, faulty bool, mon *core.Monitor, sched *sim.Scheduler) {
				sw := mkSwitch(sched, 4)
				f := apps.LearningFaults{}
				if faulty {
					f.WrongPortEvery = 2
				}
				apps.NewLearningSwitch(sw, f)
				sw.Observe(mon.HandleEvent)
				ab := packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil)
				ba := packet.NewTCP(macB, macA, ipB, ipA, 2, 1, 0, nil)
				for i := 0; i < 4; i++ {
					sw.Inject(1, ab)
					sw.Inject(2, ba)
				}
			},
		},
		{
			name:  "nat",
			props: []string{"nat-reverse"},
			run: func(t *testing.T, faulty bool, mon *core.Monitor, sched *sim.Scheduler) {
				sw := mkSwitch(sched, 2)
				f := apps.NATFaults{}
				if faulty {
					f.MistranslateReverseEvery = 1
				}
				apps.NewNAT(sw, 1, 2, packet.MustIPv4("198.51.100.1"), f)
				sw.Observe(mon.HandleEvent)
				sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 5000, 80, packet.FlagSYN, nil))
				sw.Inject(2, packet.NewTCP(macB, macA, ipB, packet.MustIPv4("198.51.100.1"), 80, 60001, packet.FlagACK, nil))
			},
		},
		{
			name:  "knocking",
			props: []string{"knock-intervening", "knock-valid-sequence"},
			run: func(t *testing.T, faulty bool, mon *core.Monitor, sched *sim.Scheduler) {
				sw := mkSwitch(sched, 4)
				f := apps.KnockFaults{}
				if faulty {
					f.IgnoreWrongGuess = true
				}
				apps.NewPortKnocking(sw, []uint16{7001, 7002, 7003}, 22, 2, f)
				sw.Observe(mon.HandleEvent)
				knock := func(port uint16) {
					sw.Inject(1, packet.NewUDP(macA, macB, ipA, ipB, 30000, port, nil))
				}
				knock(7001)
				knock(9999)
				knock(7002)
				knock(7003)
				sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 30001, 22, packet.FlagSYN, nil))
			},
		},
	}
	for _, sc := range scenarios {
		for _, faulty := range []bool{false, true} {
			name := fmt.Sprintf("%s/faulty=%v", sc.name, faulty)
			t.Run(name, func(t *testing.T) {
				sched := sim.NewScheduler()
				viols := 0
				mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
				for _, pn := range sc.props {
					if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), pn)); err != nil {
						t.Fatal(err)
					}
				}
				sc.run(t, faulty, mon, sched)
				sched.RunFor(10 * time.Second)
				if faulty && viols == 0 {
					t.Fatal("fault injected but no violation detected")
				}
				if !faulty && viols != 0 {
					t.Fatalf("no fault but %d violations (false positives)", viols)
				}
			})
		}
	}
}
