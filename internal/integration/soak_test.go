package integration

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

// TestSoakLongRun pushes a six-figure event volume through a monitor
// carrying the whole (ideal-compatible) catalogue, interleaving three
// workload shapes and long idle gaps, then checks the engine's internal
// invariants and that timeouts reclaimed state.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sched := sim.NewScheduler()
	viols := 0
	mon := core.NewMonitor(sched, core.Config{
		Provenance:  core.ProvLimited,
		OnViolation: func(*core.Violation) { viols++ },
	})
	for _, e := range property.Catalog(property.DefaultParams()) {
		// lb-round-robin is inherently multiple-match: every new flow
		// advances every waiting instance, which is quadratic by design
		// (the cost the paper attributes to out-of-band/multiple match).
		// The soak measures invariants under volume, not that property's
		// asymptotics, so it is excluded here.
		if e.Prop.Name == "lb-round-robin" {
			continue
		}
		if err := mon.AddProperty(e.Prop); err != nil {
			t.Fatal(err)
		}
	}

	feedAll := func(events []core.Event) {
		trace.Replay(sched, events, mon.HandleEvent)
	}
	for round := 0; round < 5; round++ {
		feedAll(trace.FirewallWorkload{
			Flows: 2000, ReturnsPerFlow: 4, ViolationEvery: 37, CloseEvery: 9,
			Gap: 50 * time.Microsecond,
		}.Events(sched.Now()))
		feedAll(trace.NATWorkload{
			Flows: 1000, MistranslateEvery: 41, Gap: 50 * time.Microsecond,
		}.Events(sched.Now()))
		feedAll(trace.LearningWorkload{
			Hosts: 64, PacketsPerHost: 16, PayloadBytes: 0, Gap: 50 * time.Microsecond,
		}.Events(sched.Now()))
		// Long idle gap: windows lapse, timers fire, state drains.
		sched.RunFor(10 * time.Minute)
	}

	st := mon.Stats()
	if st.Events < 100_000 {
		t.Fatalf("soak processed only %d events", st.Events)
	}
	if viols == 0 {
		t.Fatal("soak produced no violations")
	}
	if err := mon.SelfCheck(); err != nil {
		t.Fatalf("invariants after soak: %v", err)
	}
	// All windowed state must have drained across the idle gaps; only
	// unwindowed stages (e.g. firewall-basic pairs, learning-switch
	// entries) legitimately persist.
	if live := mon.ActiveInstances(); live > 60_000 {
		t.Fatalf("live instances = %d — state runaway", live)
	}
	if st.Expired == 0 || st.Discharged == 0 {
		t.Fatalf("expected expiries and discharges, got %+v", st)
	}
}
