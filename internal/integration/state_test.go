package integration

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs"
	"switchmon/internal/obs/export"
	"switchmon/internal/obs/statesize"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// TestStateEndpointUnderChurn hammers a 4-shard engine with instance
// churn — flows opening on firewall-basic (which never expires) and
// firewall-timeout (whose windows lapse as the clock advances) — while
// a poller GETs /state concurrently. It asserts two things: live polls
// never tear the report structurally (valid JSON, shard breakdown sums
// to the property total at some instant... the sums themselves are
// per-field atomic, so cross-field totals are only checked after
// quiesce), and once the engine quiesces the accounting converges
// exactly to the true instance count. Run under -race (check.sh's
// integration race line covers this file), this is also the proof that
// hot-path accounting writes and observer reads are properly
// synchronized.
func TestStateEndpointUnderChurn(t *testing.T) {
	reg := obs.NewRegistry()
	sm := core.NewShardedMonitor(4, core.Config{
		Metrics:     reg,
		StateTopK:   16,
		StateSample: 1,
	})
	defer sm.Close()
	for _, name := range []string{"firewall-basic", "firewall-timeout"} {
		if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), name)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(export.NewMux(export.MuxConfig{
		Registry: reg,
		State:    func() any { return sm.StateReport() },
	}))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	polls := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := srv.Client().Get(srv.URL + "/state")
			if err != nil {
				t.Error(err)
				return
			}
			var rep statesize.Report
			err = json.NewDecoder(resp.Body).Decode(&rep)
			resp.Body.Close()
			if err != nil {
				t.Errorf("mid-churn /state is not valid JSON: %v", err)
				return
			}
			if rep.Shards != 4 || len(rep.Properties) != 2 {
				t.Errorf("mid-churn /state shape: shards=%d properties=%d", rep.Shards, len(rep.Properties))
				return
			}
			polls++
		}
	}()

	// Feed from one goroutine (the router contract) while the poller
	// runs: 64 distinct flows opened repeatedly across 40 rounds, with
	// the clock advanced past the firewall window every few rounds so
	// firewall-timeout instances expire and refile — pool churn, timer
	// churn, and dedup refreshes all active while /state is polled.
	const flows = 64
	sched := sim.NewScheduler()
	var pid core.PacketID
	now := sched.Now()
	for round := 0; round < 40; round++ {
		for f := 0; f < flows; f++ {
			src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
			dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
			p := packet.NewTCP(macC, macD, src, dst, uint16(10000+f), 80, packet.FlagSYN, nil)
			pid++
			sm.Submit(core.Event{Kind: core.KindArrival, Time: now, PacketID: pid, Packet: p, InPort: 1})
		}
		if round%4 == 3 {
			now = now.Add(property.DefaultParams().FirewallWindow + time.Second)
			sm.AdvanceTo(now)
		} else {
			now = now.Add(time.Second)
			sm.Tick(now)
		}
	}

	// Quiesce: a barrier settles every queued batch, then a final
	// advance fires the outstanding windows.
	sm.AdvanceTo(now.Add(property.DefaultParams().FirewallWindow + time.Hour))
	sm.Barrier()
	close(stop)
	wg.Wait()
	if polls == 0 {
		t.Fatal("poller never completed a /state read during churn")
	}

	rep := sm.StateReport()
	var live int64
	for _, p := range rep.Properties {
		var shardSum int64
		for _, s := range p.Shards {
			shardSum += s.Live
		}
		if shardSum != p.Live {
			t.Fatalf("%s: shard live sum %d != total %d after quiesce", p.Property, shardSum, p.Live)
		}
		if p.Timers != 0 && p.Property == "firewall-timeout" {
			t.Fatalf("firewall-timeout still holds %d timers after all windows lapsed", p.Timers)
		}
		live += p.Live
	}
	if truth := int64(sm.ActiveInstances()); live != truth {
		t.Fatalf("accounting says %d live instances, engine says %d", live, truth)
	}
	// firewall-basic never expires: its 64 distinct flows are still
	// live. firewall-timeout expired with the last advance.
	byName := map[string]statesize.PropState{}
	for _, p := range rep.Properties {
		byName[p.Property] = p
	}
	if got := byName["firewall-basic"].Live; got != flows {
		t.Fatalf("firewall-basic live = %d, want %d", got, flows)
	}
	if got := byName["firewall-timeout"].Live; got != 0 {
		t.Fatalf("firewall-timeout live = %d, want 0 after expiry", got)
	}
	// The sketch saw every filing (sample 1): firewall-timeout's top
	// keys carry 10 filings each (40 rounds / 4 rounds per window).
	ft := byName["firewall-timeout"]
	if len(ft.TopKeys) != 16 {
		t.Fatalf("topk entries = %d, want the full sketch capacity 16", len(ft.TopKeys))
	}
	for _, kw := range ft.TopKeys {
		if lo := kw.Filings - kw.MaxOver; lo > 10 || kw.Filings < 10 {
			t.Fatalf("top key %s: bound [%d,%d] excludes the true 10 filings/flow", kw.Key, lo, kw.Filings)
		}
	}
}
