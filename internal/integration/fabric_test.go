package integration

import (
	"sort"
	"sync"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/dsl"
	"switchmon/internal/exporter"
	"switchmon/internal/fault"
	"switchmon/internal/netsim"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// The distributed-fabric E2E: two netsim switches export their event
// streams over real TCP to a central collector feeding a sharded
// engine, and the verdicts must be byte-identical to an inline engine
// observing the same switches directly — the fabric may add transport,
// but never change semantics. The property is a wandering-match (F8)
// one: the MAC bound from a DHCP lease (dhcp.client_mac, L7) is later
// matched against Ethernet destinations (eth.dst, L2), so instance
// lookup crosses protocol groups.
const leasedMACProperty = `
property "leased-mac-reachable" {
  description "core traffic addressed to a DHCP-leased MAC must not be blackholed"

  on egress "leased" {
    match switch.id == 1
    match dhcp.msg_type == 5
    match dropped == 0
    bind $M = dhcp.client_mac
  }

  on egress "blackholed" within 1s {
    match switch.id == 2
    match eth.dst == $M
    match dropped == 1
  }
}
`

var (
	macC  = packet.MustMAC("02:00:00:00:00:0c")
	macD  = packet.MustMAC("02:00:00:00:00:0d") // never leased: its blackholing is fine
	bcast = packet.MustMAC("ff:ff:ff:ff:ff:ff")
)

func parseLeasedMAC(t *testing.T) *property.Property {
	t.Helper()
	prop, err := dsl.Parse(leasedMACProperty)
	if err != nil {
		t.Fatal(err)
	}
	if id := property.Analyze(prop).InstanceID; id != property.IDWandering {
		t.Fatalf("instance id = %s, want wandering (the test exists to cover F8 over the fabric)", id)
	}
	return prop
}

// buildFabricPath wires client -> s1 (edge, floods) -> s2 (core,
// blackholes everything) and returns the network. Broadcast DHCP ACKs
// forwarded by the edge arm the property; the core dropping later
// unicast traffic addressed to the leased MACs completes it.
func buildFabricPath(t *testing.T) *netsim.Network {
	t.Helper()
	sched := sim.NewScheduler()
	n := netsim.New(sched)
	n.LinkLatency = time.Millisecond

	s1 := n.AddSwitch("edge", 1)
	s2 := n.AddSwitch("core", 1)
	s1.SetMissPolicy(dataplane.MissFlood)
	s2.Table(0).Add(&dataplane.Rule{Priority: 1, Actions: []dataplane.Action{dataplane.Drop()}})

	n.AddHost("client", macA, ipA, s1, 1)
	server := n.AddHost("server", macB, ipB, s2, 1)
	server.Quiet = true
	n.ConnectSwitches(s1, 2, s2, 2)
	return n
}

// dhcpAck builds a broadcast DHCP ACK leasing to clientMAC. Broadcast
// matters: the core blackholes these frames too, and eth.dst must not
// equal the leased MAC there or the lease frame would be its own
// violation trigger — arming and triggering would then ride different
// exporter connections with no cross-stream ordering to separate them.
func dhcpAck(clientMAC packet.MAC) *packet.Packet {
	return packet.NewDHCP(macA, bcast, ipA, ipB, &packet.DHCPv4{
		Op: packet.DHCPBootReply, Xid: 99, MsgType: packet.DHCPAck,
		YourIP: ipB, ClientMAC: clientMAC, LeaseSecs: 3600,
	})
}

// driveFabricTraffic produces a deterministic workload in two causal
// phases: leases for macB and macC arm the property, then unicast TCP
// to macB, macC (leased -> two violations) and macD (never leased -> no
// instance, no violation) hits the core blackhole. sync runs between
// the phases; the fabric uses it as a barrier so the arming events are
// applied at the collector before the triggers enter the race between
// the two exporter connections — the fabric orders events per switch,
// not across switches, so causality between switches must come from
// time, as it does here (phases are epochs, like real config changes).
func driveFabricTraffic(n *netsim.Network, sync func()) {
	client := n.HostByName("client")
	client.Send(dhcpAck(macB))
	client.Send(dhcpAck(macC))
	n.Scheduler().RunFor(50 * time.Millisecond)
	sync()
	client.Send(packet.NewTCP(macA, macB, ipA, ipB, 30000, 80, packet.FlagACK, nil))
	client.Send(packet.NewTCP(macA, macC, ipA, ipB, 30001, 80, packet.FlagACK, nil))
	client.Send(packet.NewTCP(macA, macD, ipA, ipB, 30002, 80, packet.FlagACK, nil))
	n.Scheduler().RunFor(50 * time.Millisecond)
}

// violationRecorder collects violation reports from any engine
// (shard goroutines included) as sorted strings for comparison.
type violationRecorder struct {
	mu   sync.Mutex
	strs []string
}

func (r *violationRecorder) record(v *core.Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.strs = append(r.strs, v.String())
}

func (r *violationRecorder) sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.strs...)
	sort.Strings(out)
	return out
}

// runInline is the reference: a single-threaded core.Monitor observing
// both switches directly.
func runInline(t *testing.T) []string {
	t.Helper()
	n := buildFabricPath(t)
	rec := &violationRecorder{}
	// Full state accounting — sketch on every filing, watermark low
	// enough to trip — so the differential also pins that the state
	// observatory never perturbs verdicts.
	mon := core.NewMonitor(n.Scheduler(), core.Config{
		Provenance: core.ProvLimited, OnViolation: rec.record,
		StateTopK: 16, StateSample: 1, StateWatermark: 1,
	})
	if err := mon.AddProperty(parseLeasedMAC(t)); err != nil {
		t.Fatal(err)
	}
	n.Switch("edge").Observe(mon.HandleEvent)
	n.Switch("core").Observe(mon.HandleEvent)
	driveFabricTraffic(n, func() {}) // inline applies in sim order; no barrier needed
	return rec.sorted()
}

// fabricRig is the system under test: per-switch exporters over real
// TCP into one collector feeding a sharded engine.
type fabricRig struct {
	n    *netsim.Network
	sm   *core.ShardedMonitor
	col  *collector.Collector
	exps [2]*exporter.Exporter
	rec  *violationRecorder
}

func newFabricRig(t *testing.T, batchSize int) *fabricRig {
	t.Helper()
	rig := &fabricRig{n: buildFabricPath(t), rec: &violationRecorder{}}
	// Mirror runInline's state-accounting settings: the differential is
	// only meaningful when both sides run the same observability load.
	rig.sm = core.NewShardedMonitor(4, core.Config{
		Provenance: core.ProvLimited, OnViolation: rig.rec.record,
		StateTopK: 16, StateSample: 1, StateWatermark: 1,
	})
	if err := rig.sm.AddProperty(parseLeasedMAC(t)); err != nil {
		t.Fatal(err)
	}
	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, rig.sm)
	if err != nil {
		t.Fatal(err)
	}
	col.Serve()
	rig.col = col
	for i, dpid := range []uint64{1, 2} {
		x, err := exporter.New(exporter.Config{
			Addr: col.Addr().String(), DPID: dpid, BatchSize: batchSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		x.Start()
		rig.exps[i] = x
	}
	return rig
}

// sync flushes the exporters and waits until the collector has applied
// every event published so far, then drains the engine — the barrier
// that gives cross-switch causality to a fabric that only orders events
// within each switch's stream.
func (rig *fabricRig) sync(t *testing.T) {
	t.Helper()
	var published uint64
	for _, x := range rig.exps {
		x.Flush()
		published += x.Stats().Published
	}
	deadline := time.Now().Add(3 * time.Second)
	for rig.col.Stats().Events < published {
		if time.Now().After(deadline) {
			t.Fatalf("collector applied %d of %d events", rig.col.Stats().Events, published)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rig.sm.Barrier()
}

// settle drains the exporters completely and closes them, then waits
// for the collector to catch up.
func (rig *fabricRig) settle(t *testing.T) {
	t.Helper()
	for _, x := range rig.exps {
		x.Flush()
		if abandoned := x.Close(3 * time.Second); abandoned != 0 {
			t.Fatalf("exporter abandoned %d events", abandoned)
		}
	}
	rig.sync(t)
}

func (rig *fabricRig) close() {
	rig.col.Close()
	rig.sm.Close()
}

func TestFabricDifferentialAgainstInline(t *testing.T) {
	want := runInline(t)
	if len(want) != 2 {
		t.Fatalf("inline reference found %d violations, want 2:\n%v", len(want), want)
	}

	for _, batch := range []int{1, 8} {
		rig := newFabricRig(t, batch)
		s1, s2 := rig.n.Switch("edge"), rig.n.Switch("core")
		s1.Observe(rig.exps[0].Publish)
		s2.Observe(rig.exps[1].Publish)
		driveFabricTraffic(rig.n, func() { rig.sync(t) })
		rig.settle(t)

		got := rig.rec.sorted()
		if len(got) != len(want) {
			t.Fatalf("batch=%d: fabric found %d violations, inline %d:\nfabric: %v\ninline: %v",
				batch, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: verdict %d differs over a lossless link\nfabric: %s\ninline: %s",
					batch, i, got[i], want[i])
			}
		}
		if !rig.sm.Ledger().Sound() {
			t.Fatalf("batch=%d: lossless fabric run left unsound ledger: %+v", batch, rig.sm.Ledger().Snapshot())
		}
		for i, x := range rig.exps {
			if !x.Ledger().Sound() {
				t.Fatalf("batch=%d: exporter %d ledger unsound: %+v", batch, i, x.Ledger().Snapshot())
			}
		}
		rig.close()
	}
}

func TestFabricInjectedLossMarksWireLoss(t *testing.T) {
	rig := newFabricRig(t, 1)
	defer rig.close()

	// fault.Wrap on the core switch's exporter link: half its events
	// vanish in flight; OnDrop -> NoteLoss turns each into a sequence
	// gap the collector must notice.
	spec, err := fault.ParseSpec("drop=0.5,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(spec)
	inj.OnDrop = func(core.Event) { rig.exps[1].NoteLoss(1) }
	rig.n.Switch("edge").Observe(rig.exps[0].Publish)
	rig.n.Switch("core").Observe(inj.Wrap(rig.exps[1].Publish))
	driveFabricTraffic(rig.n, func() { rig.sync(t) })
	if inj.Stats().Dropped == 0 {
		t.Fatal("injector dropped nothing; the scenario no longer exercises wire loss")
	}
	rig.settle(t)

	marks := rig.sm.Ledger().Snapshot()
	if len(marks) != 1 {
		t.Fatalf("marks = %+v, want exactly the one installed property", marks)
	}
	m := marks[0]
	if m.Property != "leased-mac-reachable" || m.Reason != core.UnsoundWireLoss {
		t.Fatalf("mark = %+v, want leased-mac-reachable / wire-loss", m)
	}
	if rig.col.Stats().GapEvents != inj.Stats().Dropped {
		t.Fatalf("collector gap events = %d, injector dropped = %d",
			rig.col.Stats().GapEvents, inj.Stats().Dropped)
	}
	// The exporter's own ledger tells the same story from its side.
	if rig.exps[1].Ledger().Sound() {
		t.Fatal("exporter ledger claims soundness despite NoteLoss")
	}
	if rig.exps[0].Ledger().Sound() != true {
		t.Fatal("lossless exporter's ledger got marked")
	}
}
