package integration

import (
	"sync"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/dsl"
	"switchmon/internal/exporter"
	"switchmon/internal/property"
	"switchmon/internal/wire"
)

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The fabric half of the lifecycle differential gate: properties are
// removed and reinstalled on the collector's sharded engine while two
// switches stream events over real TCP, and every property-set change
// is pushed to the lifecycle-negotiated exporters and acked. The stable
// property's verdicts must be byte-identical to the static inline
// reference; the churned property carries exactly its reinstalled mark.
func TestFabricLifecycleChurnDifferential(t *testing.T) {
	want := runInline(t)
	if len(want) != 2 {
		t.Fatalf("inline reference found %d violations, want 2:\n%v", len(want), want)
	}

	n := buildFabricPath(t)
	rec := &violationRecorder{}
	sm := core.NewShardedMonitor(4, core.Config{
		Provenance: core.ProvLimited, OnViolation: rec.record,
		StateTopK: 16, StateSample: 1, StateWatermark: 1,
	})
	defer sm.Close()
	stable := parseLeasedMAC(t)
	churnName := "firewall-basic"
	if err := sm.AddProperty(stable); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), churnName)); err != nil {
		t.Fatal(err)
	}

	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sm)
	if err != nil {
		t.Fatal(err)
	}
	col.Serve()
	defer col.Close()

	// Both exporters negotiate the lifecycle feature and record every
	// property set pushed to them.
	var pmu sync.Mutex
	pushed := map[uint64][][]wire.PropMeta{} // exporter index is irrelevant; key by epoch
	var exps [2]*exporter.Exporter
	for i, dpid := range []uint64{1, 2} {
		x, err := exporter.New(exporter.Config{
			Addr: col.Addr().String(), DPID: dpid, BatchSize: 1,
			OnPropertySet: func(u *wire.PropertySetUpdate) {
				pmu.Lock()
				pushed[u.Epoch] = append(pushed[u.Epoch], u.Props)
				pmu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		x.Start()
		exps[i] = x
	}
	rig := &fabricRig{n: n, sm: sm, col: col, exps: exps, rec: rec}
	n.Switch("edge").Observe(exps[0].Publish)
	n.Switch("core").Observe(exps[1].Publish)

	// broadcast mirrors what cmd/collector does after each lifecycle op:
	// epoch, per-property tenant metadata, and the full DSL source.
	broadcast := func(props ...*property.Property) {
		u := &wire.PropertySetUpdate{Epoch: sm.Epoch(), Source: dsl.FormatAll(props)}
		for _, p := range props {
			u.Props = append(u.Props, wire.PropMeta{Name: p.Name, Tenant: p.Tenant})
		}
		if err := col.BroadcastPropertySet(u); err != nil {
			t.Fatal(err)
		}
	}

	driveFabricTraffic(n, func() {
		rig.sync(t)
		// Mid-stream churn between the causal phases: remove the riding
		// property, push the shrunk set, reinstall, push again.
		if err := sm.RemoveProperty(churnName); err != nil {
			t.Fatal(err)
		}
		broadcast(stable)
		if err := sm.InstallProperty(property.CatalogByName(property.DefaultParams(), churnName)); err != nil {
			t.Fatal(err)
		}
		broadcast(stable, property.CatalogByName(property.DefaultParams(), churnName))
	})
	// Both pushes reached both exporters and were acked — checked while
	// the connections are still alive: acks written during shutdown race
	// the close. Acks are cumulative per connection (back-to-back pushes
	// coalesce into one ack for the latest epoch), so each exporter owes
	// at least one once it has applied the final epoch.
	epochAfterRemove, epochAfterReinstall := uint64(1), uint64(2)
	waitCond(t, "property-set convergence and acks", func() bool {
		return exps[0].Stats().PropertySetEpoch == epochAfterReinstall &&
			exps[1].Stats().PropertySetEpoch == epochAfterReinstall &&
			col.Stats().PropertySetAcks >= 2
	})
	pmu.Lock()
	if got := len(pushed[epochAfterRemove]); got != 2 {
		t.Fatalf("remove-epoch push reached %d exporters, want 2 (pushed=%v)", got, pushed)
	}
	if got := len(pushed[epochAfterReinstall]); got != 2 {
		t.Fatalf("reinstall-epoch push reached %d exporters, want 2 (pushed=%v)", got, pushed)
	}
	if props := pushed[epochAfterRemove][0]; len(props) != 1 || props[0].Name != "leased-mac-reachable" {
		t.Fatalf("remove-epoch property set = %+v, want only the stable property", props)
	}
	if props := pushed[epochAfterReinstall][0]; len(props) != 2 {
		t.Fatalf("reinstall-epoch property set = %+v, want both properties", props)
	}
	pmu.Unlock()
	rig.settle(t)

	// The differential: stable verdicts byte-identical to inline.
	got := rec.sorted()
	if len(got) != len(want) {
		t.Fatalf("fabric found %d violations under churn, inline %d:\nfabric: %v\ninline: %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d differs under lifecycle churn\nfabric: %s\ninline: %s", i, got[i], want[i])
		}
	}

	// Exactly the churned property is marked, and only as reinstalled.
	marks := sm.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Property != churnName || marks[0].Reason != core.UnsoundReinstalled {
		t.Fatalf("marks = %+v, want exactly %s/reinstalled", marks, churnName)
	}
	for i, x := range exps {
		if !x.Ledger().Sound() {
			t.Fatalf("exporter %d ledger unsound on a lossless run: %+v", i, x.Ledger().Snapshot())
		}
	}
}
