package integration

import (
	"net"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/exporter"
	"switchmon/internal/obs"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
	"switchmon/internal/obs/tracer"
)

// attachSelfMonitor runs the full self-monitoring tier — a fast-cadence
// history sampler plus the built-in SLO rules — over reg for the life
// of the test. The differential tests use it to prove observation
// changes nothing: sampling and burn-rate evaluation ride alongside the
// engine, and verdicts must stay byte-identical to the inline
// reference.
func attachSelfMonitor(t *testing.T, reg *obs.Registry) {
	t.Helper()
	db := histdb.New(histdb.Config{Registry: reg, SampleEvery: 10 * time.Millisecond, Retention: time.Minute})
	slo.New(slo.Config{DB: db, Rules: slo.BuiltinRules(), Registry: reg})
	db.Start()
	t.Cleanup(db.Close)
}

// newTracedFabricRig is newFabricRig with end-to-end tracing wired in:
// one switch-side tracer shared by both dataplane switches and their
// exporters, one collector-side tracer on the collector and the sharded
// engine. A non-zero wireDelay interposes a delay proxy on the
// exporter->collector path.
// A non-zero adaptiveSLO switches the exporters to adaptive sealing
// (batchSize then only caps the batch via BatchSizeMax).
func newTracedFabricRig(t *testing.T, batchSize int, sampleN uint64, wireDelay, adaptiveSLO time.Duration) (*fabricRig, *tracer.Tracer, *tracer.Tracer) {
	t.Helper()
	swTr := tracer.New(tracer.Config{SampleN: sampleN})
	colTr := tracer.New(tracer.Config{SampleN: sampleN})

	rig := &fabricRig{n: buildFabricPath(t), rec: &violationRecorder{}}
	// The engine runs fully observed: metrics on, history sampled at a
	// deliberately aggressive 10ms cadence, SLO rules evaluating live.
	reg := obs.NewRegistry()
	attachSelfMonitor(t, reg)
	rig.sm = core.NewShardedMonitor(4, core.Config{
		Provenance: core.ProvLimited, OnViolation: rig.rec.record, Tracer: colTr, Metrics: reg,
	})
	if err := rig.sm.AddProperty(parseLeasedMAC(t)); err != nil {
		t.Fatal(err)
	}
	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0", Tracer: colTr}, rig.sm)
	if err != nil {
		t.Fatal(err)
	}
	col.Serve()
	rig.col = col
	dialAddr := col.Addr().String()
	if wireDelay > 0 {
		dialAddr = delayProxy(t, dialAddr, wireDelay)
	}
	for i, dpid := range []uint64{1, 2} {
		xcfg := exporter.Config{Addr: dialAddr, DPID: dpid, BatchSize: batchSize, Tracer: swTr}
		if adaptiveSLO > 0 {
			xcfg.BatchSize = 0
			xcfg.TargetSealLatency = adaptiveSLO
			xcfg.BatchSizeMax = batchSize
		}
		x, err := exporter.New(xcfg)
		if err != nil {
			t.Fatal(err)
		}
		x.Start()
		rig.exps[i] = x
	}
	rig.n.Switch("edge").SetTracer(swTr)
	rig.n.Switch("core").SetTracer(swTr)
	return rig, swTr, colTr
}

// TestFabricTracingDifferential is the acceptance gate for the tracing
// layer: with tracing enabled at any sample rate, fabric verdicts must
// stay byte-identical to the inline engine — spans are observability
// metadata, never semantics. At 1-in-1 sampling the collector must also
// complete spans that carry all seven stages. The adaptive case runs
// the same traffic with the seal controller choosing batch sizes: how
// events are grouped into wire batches must never leak into verdicts.
func TestFabricTracingDifferential(t *testing.T) {
	want := runInline(t)
	if len(want) != 2 {
		t.Fatalf("inline reference found %d violations, want 2:\n%v", len(want), want)
	}

	cases := []struct {
		name    string
		sampleN uint64
		slo     time.Duration
	}{
		{"fixed/sample=1", 1, 0},
		{"fixed/sample=3", 3, 0},
		{"adaptive/sample=1", 1, 250 * time.Microsecond},
	}
	for _, tc := range cases {
		rig, _, colTr := newTracedFabricRig(t, 4, tc.sampleN, 0, tc.slo)
		rig.n.Switch("edge").Observe(rig.exps[0].Publish)
		rig.n.Switch("core").Observe(rig.exps[1].Publish)
		driveFabricTraffic(rig.n, func() { rig.sync(t) })
		rig.settle(t)

		got := rig.rec.sorted()
		if len(got) != len(want) {
			t.Fatalf("%s: fabric found %d violations, inline %d:\nfabric: %v\ninline: %v",
				tc.name, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: verdict %d differs with tracing on\nfabric: %s\ninline: %s",
					tc.name, i, got[i], want[i])
			}
		}
		if !rig.sm.Ledger().Sound() {
			t.Fatalf("%s: tracing left unsound ledger: %+v", tc.name, rig.sm.Ledger().Snapshot())
		}

		recs := colTr.Snapshot()
		if len(recs) == 0 {
			t.Fatalf("%s: no spans completed at the collector", tc.name)
		}
		if tc.sampleN == 1 {
			full := 0
			for _, r := range recs {
				if len(r.Marks) == int(tracer.NumStages) {
					full++
				}
			}
			if full == 0 {
				t.Fatalf("%s: no span carries all %d stages: %+v", tc.name, tracer.NumStages, recs[0].Marks)
			}
		}
		rig.close()
	}
}

// delayProxy forwards TCP both ways between the exporters and the
// collector, sleeping d before relaying each read — a deterministic
// wire-delay fault with symmetric one-way latency.
func delayProxy(t *testing.T, target string, d time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	relay := func(dst, src net.Conn) {
		defer dst.Close()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				time.Sleep(d)
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	go func() {
		for {
			down, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				down.Close()
				continue
			}
			go relay(up, down)
			go relay(down, up)
		}
	}()
	return ln.Addr().String()
}

// TestFaultMatrixWireDelayTracingMonotone is the fault-matrix cell for
// wire delay with tracing on: spans cross a delayed link, and within
// each host's clock domain — {ingress, enqueue, batch_seal, wire_send}
// on the switch, {collector_recv, shard_dispatch, verdict} on the
// collector — raw stage marks must stay monotone. Cross-domain deltas
// go through the offset estimate and may wobble; intra-domain order is
// physical and must not.
func TestFaultMatrixWireDelayTracingMonotone(t *testing.T) {
	const oneWay = 3 * time.Millisecond
	rig, _, colTr := newTracedFabricRig(t, 2, 1, oneWay, 0)
	defer rig.close()
	rig.n.Switch("edge").Observe(rig.exps[0].Publish)
	rig.n.Switch("core").Observe(rig.exps[1].Publish)
	driveFabricTraffic(rig.n, func() { rig.sync(t) })
	rig.settle(t)

	switchStages := []string{"ingress", "enqueue", "batch_seal", "wire_send"}
	collectorStages := []string{"collector_recv", "shard_dispatch", "verdict"}
	recs := colTr.Snapshot()
	if len(recs) == 0 {
		t.Fatal("no spans completed across the delayed wire")
	}
	sawFlight := false
	for _, r := range recs {
		for _, group := range [][]string{switchStages, collectorStages} {
			prev := int64(0)
			for _, st := range group {
				m := r.Marks[st]
				if m == 0 {
					continue
				}
				if m < prev {
					t.Fatalf("span %x: stage %s mark %d precedes previous stage (%d); marks=%v",
						r.Key, st, m, prev, r.Marks)
				}
				prev = m
			}
		}
		// The wire flight (collector_recv's delta from wire_send after
		// offset adjustment) should reflect the injected delay for spans
		// that crossed the proxy.
		if ns, ok := r.StageNs["collector_recv"]; ok && ns >= oneWay.Nanoseconds()/2 {
			sawFlight = true
		}
	}
	if !sawFlight {
		t.Fatalf("no span shows wire flight >= %v/2 across the delay proxy", oneWay)
	}
}
