package integration

import (
	"testing"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// Experiment E10: the paper's Sec. 1 motivation that "switches may run
// stateful programs without controller interaction, making
// controller-based monitoring infeasible." A learn-action learning switch
// runs with no controller at all; the on-switch monitor still checks it,
// and there is no control-channel traffic an external monitor could have
// watched.

func offloadedRig(t *testing.T, faults apps.OffloadedFaults) (*dataplane.Switch, *sim.Scheduler, *int) {
	t.Helper()
	sched := sim.NewScheduler()
	sw := dataplane.New("s1", sched, 2)
	for i := 1; i <= 4; i++ {
		sw.AddPort(dataplane.PortNo(i), nil)
	}
	apps.NewOffloadedLearningSwitch(sw, time.Minute, faults)
	viols := 0
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "lswitch-unicast")); err != nil {
		t.Fatal(err)
	}
	sw.Observe(mon.HandleEvent)
	return sw, sched, &viols
}

func exchange(sw *dataplane.Switch, rounds int) {
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, 0, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, 0, nil)
	for i := 0; i < rounds; i++ {
		sw.Inject(1, ab)
		sw.Inject(2, ba)
	}
}

func TestOffloadedSwitchCorrectNoControllerNoViolations(t *testing.T) {
	sw, _, viols := offloadedRig(t, apps.OffloadedFaults{})
	exchange(sw, 5)
	if *viols != 0 {
		t.Fatalf("violations = %d, want 0", *viols)
	}
	// Zero packet-ins: there was never anything for an external,
	// controller-based monitor to see.
	if sw.Stats().PacketIns != 0 {
		t.Fatalf("packet-ins = %d, want 0", sw.Stats().PacketIns)
	}
	// The learn action actually installed per-MAC rules.
	if got := sw.Table(1).Len(); got != 3 { // macA, macB, flood fallback
		t.Fatalf("table 1 rules = %d, want 3", got)
	}
}

func TestOffloadedSwitchWrongPortDetectedOnSwitch(t *testing.T) {
	sw, _, viols := offloadedRig(t, apps.OffloadedFaults{WrongPort: 4})
	exchange(sw, 3)
	if *viols == 0 {
		t.Fatal("on-switch monitor missed the wrong-port learn fault")
	}
	if sw.Stats().PacketIns != 0 {
		t.Fatal("faulty scenario leaked packet-ins; the point is zero controller visibility")
	}
}

func TestOffloadedRelearningDoesNotStackRules(t *testing.T) {
	sw, _, _ := offloadedRig(t, apps.OffloadedFaults{})
	exchange(sw, 50)
	if got := sw.Table(1).Len(); got != 3 {
		t.Fatalf("table 1 rules = %d after 100 packets, want 3 (learn must replace)", got)
	}
}

func TestOffloadedLearnedRulesExpire(t *testing.T) {
	sw, sched, _ := offloadedRig(t, apps.OffloadedFaults{})
	exchange(sw, 1)
	if got := sw.Table(1).Len(); got != 3 {
		t.Fatalf("table 1 rules = %d, want 3", got)
	}
	sched.RunFor(2 * time.Minute) // idle timeout is 1 minute
	if got := sw.Table(1).Len(); got != 1 {
		t.Fatalf("table 1 rules = %d after idle, want 1 (flood fallback)", got)
	}
}
