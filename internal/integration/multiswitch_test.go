package integration

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/dsl"
	"switchmon/internal/netsim"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

// The multi-switch collector scenario: one monitor observes two switches
// (NetSight-style aggregation), with a path property scoped per switch via
// the switch.id field — "a flow admitted at the edge (s1) must leave the
// core (s2) within 100ms; a core drop or blackhole is a violation". The
// paper scopes itself to single-switch monitoring; this extension shows
// the same engine covering network-wide properties once events carry
// switch identity.
const pathProperty = `
property "edge-to-core-delivery" {
  description "traffic admitted at the edge switch leaves the core switch within 100ms"

  on egress "edge-forwarded" {
    match switch.id == 1
    match dropped == 0
    match ip.proto == 6
    bind $A = ip.src
    bind $B = ip.dst
    bind $SP = l4.src_port
  }

  unless egress "core-silent" within 100ms {
    match switch.id == 2
    match ip.src == $A
    match ip.dst == $B
    match l4.src_port == $SP
    match dropped == 0
  }
}
`

// buildPath wires client -> s1 -> s2 -> server with flood forwarding.
func buildPath(t *testing.T, coreDrops bool) (*netsim.Network, *netsim.Host, *core.Monitor, *int) {
	t.Helper()
	sched := sim.NewScheduler()
	n := netsim.New(sched)
	n.LinkLatency = time.Millisecond

	s1 := n.AddSwitch("edge", 1)
	s2 := n.AddSwitch("core", 1)
	s1.SetMissPolicy(dataplane.MissFlood)
	if coreDrops {
		// Blackhole: the core switch drops everything (explicit rule, so
		// the drop is an observable decision).
		s2.Table(0).Add(&dataplane.Rule{Priority: 1, Actions: []dataplane.Action{dataplane.Drop()}})
	} else {
		s2.SetMissPolicy(dataplane.MissFlood)
	}

	client := n.AddHost("client", macA, ipA, s1, 1)
	server := n.AddHost("server", macB, ipB, s2, 1)
	server.Quiet = true
	n.ConnectSwitches(s1, 2, s2, 2)

	prop, err := dsl.Parse(pathProperty)
	if err != nil {
		t.Fatal(err)
	}
	viols := 0
	mon := core.NewMonitor(sched, core.Config{
		Provenance:  core.ProvFull,
		OnViolation: func(v *core.Violation) { viols++ },
	})
	if err := mon.AddProperty(prop); err != nil {
		t.Fatal(err)
	}
	// The collector observes BOTH switches.
	s1.Observe(mon.HandleEvent)
	s2.Observe(mon.HandleEvent)
	return n, client, mon, &viols
}

func TestMultiSwitchPathDelivery(t *testing.T) {
	n, client, _, viols := buildPath(t, false)
	client.Send(packet.NewTCP(macA, macB, ipA, ipB, 30000, 80, packet.FlagSYN, nil))
	n.Scheduler().RunFor(time.Second)
	if *viols != 0 {
		t.Fatalf("violations = %d, want 0 (packet crossed both switches)", *viols)
	}
	if n.HostByName("server").ReceivedCount() != 1 {
		t.Fatal("server did not receive the packet")
	}
}

func TestMultiSwitchCoreBlackholeDetected(t *testing.T) {
	n, client, _, viols := buildPath(t, true)
	client.Send(packet.NewTCP(macA, macB, ipA, ipB, 30000, 80, packet.FlagSYN, nil))
	n.Scheduler().RunFor(time.Second)
	if *viols != 1 {
		t.Fatalf("violations = %d, want 1 (core blackholed the flow)", *viols)
	}
}

func TestSwitchIDScoping(t *testing.T) {
	// An edge drop (before stage 0 matches) must NOT start an instance:
	// the property is scoped to switch.id==1 *forwarded* traffic.
	n, client, mon, viols := buildPath(t, false)
	// Kill the edge uplink so the edge floods nowhere -> implicit drop.
	n.Switch("edge").SetPortUp(2, false)
	client.Send(packet.NewTCP(macA, macB, ipA, ipB, 30001, 80, packet.FlagSYN, nil))
	n.Scheduler().RunFor(time.Second)
	if *viols != 0 {
		t.Fatalf("violations = %d, want 0", *viols)
	}
	if mon.ActiveInstances() != 0 {
		t.Fatalf("instances = %d, want 0 (edge drop must not arm the property)", mon.ActiveInstances())
	}
}

func TestNetsimAssignsDPIDs(t *testing.T) {
	sched := sim.NewScheduler()
	n := netsim.New(sched)
	a := n.AddSwitch("a", 1)
	b := n.AddSwitch("b", 1)
	if a.DPID() != 1 || b.DPID() != 2 {
		t.Fatalf("dpids = %d, %d", a.DPID(), b.DPID())
	}
}
