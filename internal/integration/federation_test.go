package integration

import (
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/dsl"
	"switchmon/internal/exporter"
	"switchmon/internal/federation"
	"switchmon/internal/obs"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
	"switchmon/internal/wire"
)

// The federated-fleet differential gate: M=3 switches fan their event
// streams across N collectors by datapath id, connections are cut and
// replayed mid-run, one collector joins and one leaves mid-run behind
// replay-based drain fences — and the union of the fleet's verdicts and
// ledger marks must be byte-identical to one inline engine observing
// all three switches directly.
//
// The property is dpid-partitionable (its identity pins switch.id on
// every path), which is exactly the precondition the partition-key
// analysis (core.ValidateDPIDPartition) certifies for this deployment.
const localDropProperty = `
property "local-drop-after-forward" {
  description "a forwarded SYN's flow must not be dropped by the same switch within a second"

  on egress "fwd" {
    match tcp.syn == 1
    match dropped == 0
    bind $SW = switch.id
    bind $SRC = ip.src
  }

  on egress "dropped" within 1s {
    match switch.id == $SW
    match ip.src == $SRC
    match dropped == 1
  }
}
`

const (
	fedSwitches      = 3
	fedPhases        = 3
	fedFlowsPerPhase = 8 // odd flows are dropped in-window: 4 violations per switch per phase
)

// fedPhaseEvents builds one phase of deterministic per-switch traffic
// starting at base: every flow's SYN is forwarded; odd flows are then
// dropped by the same switch 200ms later (a violation), even flows
// never are (their instances expire silently).
func fedPhaseEvents(phase int, base time.Time) []core.Event {
	var out []core.Event
	for f := 1; f <= fedFlowsPerPhase; f++ {
		for sw := uint64(1); sw <= fedSwitches; sw++ {
			src := packet.MustIPv4(fmt.Sprintf("10.%d.%d.%d", phase, sw, f))
			pkt := packet.NewTCP(macA, macB, src, ipB, uint16(20000+f), 80, packet.FlagSYN, nil)
			at := base.Add(time.Duration(f) * 10 * time.Millisecond)
			out = append(out, core.Event{
				Kind: core.KindEgress, Time: at, SwitchID: sw,
				PacketID: core.PacketID(uint64(phase)<<16 | uint64(sw)<<8 | uint64(f)),
				Packet:   pkt, InPort: 1, OutPort: 2,
			})
			if f%2 == 1 {
				out = append(out, core.Event{
					Kind: core.KindEgress, Time: at.Add(200 * time.Millisecond), SwitchID: sw,
					PacketID: core.PacketID(uint64(phase)<<16 | uint64(sw)<<8 | uint64(f)),
					Packet:   pkt, InPort: 1, Dropped: true,
				})
			}
		}
	}
	// Switches emit time-ordered streams; the interleaved build above
	// places each flow's drop after later flows' forwards, so restore
	// global (and hence per-switch) time order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// runFedInline is the reference: one single-threaded monitor consuming
// all three switches' phases in global time order.
func runFedInline(t *testing.T) []string {
	t.Helper()
	sched := sim.NewScheduler()
	rec := &violationRecorder{}
	mon := core.NewMonitor(sched, core.Config{Provenance: core.ProvLimited, OnViolation: rec.record})
	p, err := dsl.Parse(localDropProperty)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateDPIDPartition([]*property.Property{p}); err != nil {
		t.Fatal(err)
	}
	if err := mon.AddProperty(p); err != nil {
		t.Fatal(err)
	}
	var events []core.Event
	for phase := 0; phase < fedPhases; phase++ {
		events = append(events, fedPhaseEvents(phase, sim.Epoch.Add(time.Duration(phase)*10*time.Second))...)
	}
	trace.Replay(sched, events, mon.HandleEvent)
	mon.Flush()
	sched.RunFor(time.Hour)
	return rec.sorted()
}

// cutConn injects transport faults: the connection fails after a fixed
// number of written bytes, forcing the exporter through its
// reconnect-and-replay path while collector-side dedup keeps delivery
// exactly-once.
type cutConn struct {
	net.Conn
	remaining int
}

func (c *cutConn) Write(p []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, fmt.Errorf("injected connection cut")
	}
	n, err := c.Conn.Write(p)
	c.remaining -= n
	return n, err
}

func TestFederatedDifferential(t *testing.T) {
	want := runFedInline(t)
	wantViolations := fedPhases * fedSwitches * fedFlowsPerPhase / 2
	if len(want) != wantViolations {
		t.Fatalf("inline reference found %d violations, want %d:\n%v", len(want), wantViolations, want)
	}

	// The fleet: three collectors, each a full sharded engine; all
	// verdicts land in one shared recorder (the fleet's union).
	rec := &violationRecorder{}
	type member struct {
		sm  *core.ShardedMonitor
		col *collector.Collector
	}
	var cols [3]member
	for i := range cols {
		// Every member runs fully self-monitored (fast-cadence history
		// sampler + SLO engine); the differential below proves the
		// observation tier cannot perturb fleet verdicts.
		reg := obs.NewRegistry()
		attachSelfMonitor(t, reg)
		sm := core.NewShardedMonitor(2, core.Config{Provenance: core.ProvLimited, OnViolation: rec.record, Metrics: reg})
		p, err := dsl.Parse(localDropProperty)
		if err != nil {
			t.Fatal(err)
		}
		if err := sm.AddProperty(p); err != nil {
			t.Fatal(err)
		}
		col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sm)
		if err != nil {
			t.Fatal(err)
		}
		col.Serve()
		defer col.Close()
		defer sm.Close()
		cols[i] = member{sm: sm, col: col}
	}
	addr := func(i int) string { return cols[i].col.Addr().String() }

	// Three federated switches, initial fleet {A, B}; the third
	// federation's links suffer deterministic connection cuts every 512
	// bytes written — the fault injection the replay path must absorb.
	var cutDials uint64
	var feds [fedSwitches]*federation.Router
	for i := range feds {
		cfg := federation.Config{
			Members:      []federation.Member{{Addr: addr(0)}, {Addr: addr(1)}},
			DPID:         uint64(i + 1),
			DrainTimeout: 5 * time.Second,
			Exporter:     exporter.Config{BatchSize: 4, MaxBatchAge: 2 * time.Millisecond},
		}
		if i == 2 {
			cfg.Dial = func(a string) (net.Conn, error) {
				c, err := net.DialTimeout("tcp", a, time.Second)
				if err != nil {
					return nil, err
				}
				atomic.AddUint64(&cutDials, 1)
				return &cutConn{Conn: c, remaining: 512}, nil
			}
		}
		r, err := federation.NewRouter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		defer r.Close(time.Second)
		feds[i] = r
	}

	published := 0
	runPhase := func(phase int) {
		events := fedPhaseEvents(phase, sim.Epoch.Add(time.Duration(phase)*10*time.Second))
		for _, e := range events {
			feds[e.SwitchID-1].Publish(e)
		}
		published += len(events)
		for _, r := range feds {
			r.Flush()
		}
		// Quiescence barrier: every published event applied somewhere in
		// the fleet (dedup keeps replays exactly-once) before anything
		// else happens — membership changes at phase boundaries never
		// move in-flight evidence.
		waitCond(t, fmt.Sprintf("phase %d applied fleet-wide", phase), func() bool {
			var total uint64
			for _, m := range cols {
				total += m.col.Stats().Events
			}
			return total == uint64(published)
		})
	}

	reconfigure := func(epoch uint64, members ...int) {
		fc := &wire.FleetConfig{Epoch: epoch}
		for _, i := range members {
			fc.Members = append(fc.Members, wire.FleetMember{Addr: addr(i)})
		}
		// The change rides the negotiated wire frames: one collector
		// broadcasts, every router hears it on a live route, re-routes
		// behind its drain fence, and acks.
		if err := cols[0].col.BroadcastFleetConfig(fc); err != nil {
			t.Fatal(err)
		}
		for i, r := range feds {
			waitCond(t, fmt.Sprintf("router %d at fleet epoch %d", i, epoch), func() bool {
				return r.Epoch() == epoch
			})
		}
	}

	runPhase(0)
	reconfigure(1, 0, 1, 2) // collector C joins mid-run
	runPhase(1)
	eventsAtLeave := cols[1].col.Stats().Events
	reconfigure(2, 0, 2) // collector B leaves mid-run
	runPhase(2)

	// The departed collector saw nothing after its drain-fenced exit.
	if got := cols[1].col.Stats().Events; got != eventsAtLeave {
		t.Fatalf("departed collector applied %d events after leaving", got-eventsAtLeave)
	}
	// The cut link really exercised reconnect+replay: without faults the
	// faulty router dials each of its three routes exactly once (removed
	// routes take their stats with them, so count dials at the source).
	if d := atomic.LoadUint64(&cutDials); d <= 3 {
		t.Fatalf("connection cuts injected but only %d dials happened; the fault path went unexercised", d)
	}

	// Settle: close routers (drains every route), then fire all
	// outstanding deadline monitors.
	for _, r := range feds {
		if abandoned := r.Close(5 * time.Second); abandoned != 0 {
			t.Fatalf("federation abandoned %d events at close", abandoned)
		}
	}
	for _, m := range cols {
		m.sm.Drain()
	}

	// The differential: fleet verdict union byte-identical to inline.
	got := rec.sorted()
	if len(got) != len(want) {
		t.Fatalf("fleet found %d violations, inline %d:\nfleet: %v\ninline: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d differs across the federated fleet\nfleet: %s\ninline: %s", i, got[i], want[i])
		}
	}
	// Ledger differential: the inline run is lossless and unmarked; so
	// must be every fleet engine and every route (cuts were replayed,
	// never lost).
	for i, m := range cols {
		if !m.sm.Ledger().Sound() {
			t.Fatalf("collector %d ledger unsound: %+v", i, m.sm.Ledger().Snapshot())
		}
	}
	for i, r := range feds {
		if marks := r.Ledger(); len(marks) != 0 {
			t.Fatalf("federation %d marked loss on a lossless run: %+v", i, marks)
		}
	}
}
