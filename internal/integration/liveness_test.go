package integration

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/netsim"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// Ping liveness end to end: netsim hosts answer echo requests; a quiet
// (dead) host leaves the negative observation to fire.
func pingRig(t *testing.T, serverQuiet bool) (*netsim.Network, *netsim.Host, *int) {
	t.Helper()
	sched := sim.NewScheduler()
	n := netsim.New(sched)
	n.LinkLatency = time.Millisecond
	sw := n.AddSwitch("s1", 1)
	sw.SetMissPolicy(dataplane.MissFlood)
	client := n.AddHost("client", macA, ipA, sw, 1)
	server := n.AddHost("server", macB, ipB, sw, 2)
	server.Quiet = serverQuiet

	viols := 0
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "ping-reply-within")); err != nil {
		t.Fatal(err)
	}
	sw.Observe(mon.HandleEvent)
	return n, client, &viols
}

func TestPingLivenessHealthyHost(t *testing.T) {
	n, client, viols := pingRig(t, false)
	client.Ping(macB, ipB, 9, 1)
	n.Scheduler().RunFor(5 * time.Second)
	if *viols != 0 {
		t.Fatalf("violations = %d, want 0 (host replied)", *viols)
	}
	if client.ReceivedCount() != 1 {
		t.Fatal("client did not get the echo reply")
	}
}

func TestPingLivenessDeadHost(t *testing.T) {
	n, client, viols := pingRig(t, true)
	client.Ping(macB, ipB, 9, 1)
	n.Scheduler().RunFor(5 * time.Second)
	if *viols != 1 {
		t.Fatalf("violations = %d, want 1 (dead host)", *viols)
	}
}

func TestPingLivenessRepeatedProbes(t *testing.T) {
	// Feature 7's non-refresh rule at ICMP: probing every 1.5s (inside
	// the 2s window) must not push the deadline out indefinitely.
	n, client, viols := pingRig(t, true)
	for i := 0; i < 3; i++ {
		client.Ping(macB, ipB, 9, uint16(i))
		n.Scheduler().RunFor(1500 * time.Millisecond)
	}
	n.Scheduler().RunFor(5 * time.Second)
	if *viols == 0 {
		t.Fatal("repeated probes suppressed the timeout violation")
	}
}
