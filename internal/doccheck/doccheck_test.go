// Package doccheck enforces the repository's documentation bar: every
// exported declaration in every library package must carry a doc comment.
package doccheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// libraryPackages are the directories whose exported API must be fully
// documented (cmd mains and examples are exempt: their doc is the package
// comment).
var libraryPackages = []string{
	"sim", "packet", "property", "dsl", "core",
	"dataplane", "backend", "varanus", "apps", "netsim", "trace", "tables",
	"obs", "obs/export", "obs/statesize", "obs/histdb", "obs/slo",
	"wire", "exporter", "collector",
}

func TestEveryExportedIdentifierIsDocumented(t *testing.T) {
	root := "../.."
	for _, pkg := range libraryPackages {
		dir := filepath.Join(root, "internal", pkg)
		fset := token.NewFileSet()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, entry := range entries {
			name := entry.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			checkFile(t, fset, file)
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, file *ast.File) {
	report := func(pos token.Pos, what string) {
		t.Errorf("%s: exported %s lacks a doc comment", fset.Position(pos), what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Methods on unexported receiver types are not part of the
			// public API even when their names are exported (interface
			// implementations like heap.Interface).
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function "+d.Name.Name)
			}
		case *ast.GenDecl:
			// A doc comment on the grouped declaration covers its specs
			// (const blocks, var blocks).
			groupDocumented := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDocumented || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), "value "+n.Name)
						}
					}
				}
			}
		}
	}
}
