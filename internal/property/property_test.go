package property

import (
	"strings"
	"testing"
	"time"

	"switchmon/internal/packet"
)

func TestCmpOpCompare(t *testing.T) {
	n1, n2 := packet.Num(1), packet.Num(2)
	s := packet.Str("a")
	cases := []struct {
		op   CmpOp
		a, b packet.Value
		want bool
	}{
		{OpEq, n1, n1, true},
		{OpEq, n1, n2, false},
		{OpEq, n1, s, false},
		{OpNe, n1, n2, true},
		{OpNe, n1, n1, false},
		{OpLt, n1, n2, true},
		{OpLt, n2, n1, false},
		{OpLe, n1, n1, true},
		{OpGt, n2, n1, true},
		{OpGe, n1, n1, true},
		{OpGe, n1, n2, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.a, c.b); got != c.want {
			t.Errorf("%v.Compare(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestOperandString(t *testing.T) {
	if got := Ref("A").String(); got != "$A" {
		t.Errorf("Ref String = %q", got)
	}
	if got := LitNum(7).String(); got != "7" {
		t.Errorf("LitNum String = %q", got)
	}
	if got := LitStr("x").String(); got != `"x"` {
		t.Errorf("LitStr String = %q", got)
	}
	h := HashOf(4, 10, packet.FieldIPSrc, packet.FieldIPDst)
	if got := h.String(); !strings.Contains(got, "hash(ip.src, ip.dst") {
		t.Errorf("HashOf String = %q", got)
	}
	if !Ref("A").IsVar() || LitNum(1).IsVar() {
		t.Error("IsVar misreports")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		prop *Property
		want string
	}{
		{
			"empty name",
			&Property{},
			"empty name",
		},
		{
			"no stages",
			&Property{Name: "x"},
			"no observation stages",
		},
		{
			"unbound variable",
			&Property{Name: "x", Stages: []Stage{{
				Label: "s", SamePacketAs: -1,
				Preds: []Pred{EqVar(packet.FieldIPSrc, "A")},
			}}},
			"before binding",
		},
		{
			"negative first",
			&Property{Name: "x", Stages: []Stage{{
				Label: "s", Negative: true, Window: time.Second, SamePacketAs: -1,
			}}},
			"begin with a negative",
		},
		{
			"negative without window",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", SamePacketAs: -1},
				{Label: "s", Negative: true, SamePacketAs: -1},
			}},
			"without a window",
		},
		{
			"negative with binds",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", SamePacketAs: -1},
				{Label: "s", Negative: true, Window: time.Second, SamePacketAs: -1,
					Binds: []Binding{{Var: "V", Field: packet.FieldIPSrc}}},
			}},
			"cannot bind",
		},
		{
			"same-packet forward reference",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", SamePacketAs: 0},
			}},
			"not earlier",
		},
		{
			"same-packet to oob",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", Class: OutOfBand, SamePacketAs: -1},
				{Label: "b", SamePacketAs: 0},
			}},
			"non-packet stage",
		},
		{
			"oob stage with same-packet",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", SamePacketAs: -1},
				{Label: "b", Class: OutOfBand, SamePacketAs: 0},
			}},
			"out-of-band stage",
		},
		{
			"bad field in pred",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1,
				Preds: []Pred{{Field: packet.Field(9999), Op: OpEq, Arg: LitNum(0)}},
			}}},
			"unregistered field",
		},
		{
			"bad field in bind",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1,
				Binds: []Binding{{Var: "V", Field: packet.Field(9999)}},
			}}},
			"unregistered field",
		},
		{
			"empty bind var",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1,
				Binds: []Binding{{Var: "", Field: packet.FieldIPSrc}},
			}}},
			"empty variable",
		},
		{
			"window and windowvar",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", SamePacketAs: -1, Binds: []Binding{{Var: "L", Field: packet.FieldDHCPLeaseSecs}}},
				{Label: "b", SamePacketAs: -1, Window: time.Second, WindowVar: "L"},
			}},
			"both Window and WindowVar",
		},
		{
			"unbound windowvar",
			&Property{Name: "x", Stages: []Stage{
				{Label: "a", SamePacketAs: -1},
				{Label: "b", SamePacketAs: -1, WindowVar: "L"},
			}},
			"window variable",
		},
		{
			"empty anyof group",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1, AnyOf: []PredGroup{{}},
			}}},
			"empty any-of group",
		},
		{
			"hash zero modulus",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1,
				Preds: []Pred{{Field: packet.FieldOutPort, Op: OpNe, Arg: HashOf(0, 0, packet.FieldIPSrc)}},
			}}},
			"zero modulus",
		},
		{
			"hash no fields",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1,
				Preds: []Pred{{Field: packet.FieldOutPort, Op: OpNe, Arg: HashOf(4, 0)}},
			}}},
			"without fields",
		},
		{
			"unbound guard variable",
			&Property{Name: "x", Stages: []Stage{{
				Label: "a", SamePacketAs: -1,
				Until: []Guard{{Class: Arrival, Preds: []Pred{EqVar(packet.FieldIPSrc, "Z")}}},
			}}},
			"before binding",
		},
	}
	for _, c := range cases {
		err := c.prop.Validate()
		if err == nil {
			t.Errorf("%s: Validate returned nil", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsCatalog(t *testing.T) {
	for _, e := range Catalog(DefaultParams()) {
		if err := e.Prop.Validate(); err != nil {
			t.Errorf("catalogue property %s invalid: %v", e.Prop.Name, err)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	entries := Catalog(DefaultParams())
	if len(entries) != 24 {
		t.Fatalf("catalogue has %d entries, want 24 (5 in-text + 2 extra ARP + 13 Table 1 + 4 extensions)", len(entries))
	}
	for _, e := range entries {
		if seen[e.Prop.Name] {
			t.Errorf("duplicate property name %s", e.Prop.Name)
		}
		seen[e.Prop.Name] = true
		if e.Group == "" || e.Source == "" {
			t.Errorf("property %s missing group/source", e.Prop.Name)
		}
	}
}

func TestCatalogByName(t *testing.T) {
	p := CatalogByName(DefaultParams(), "firewall-basic")
	if p == nil || len(p.Stages) != 2 {
		t.Fatalf("firewall-basic = %+v", p)
	}
	if CatalogByName(DefaultParams(), "nope") != nil {
		t.Fatal("CatalogByName found a nonexistent property")
	}
}

func TestVars(t *testing.T) {
	p := CatalogByName(DefaultParams(), "nat-reverse")
	vars := p.Vars()
	want := []Var{"A", "P", "B", "Q", "A2", "P2"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := New("bad", "uses unbound var")
	b.OnArrival("a").Where(EqVar(packet.FieldIPSrc, "NOPE"))
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an unbound variable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	New("bad2", "").OnArrival("a").Where(EqVar(packet.FieldIPSrc, "NOPE"))
	bb := New("bad2", "")
	bb.OnArrival("a").Where(EqVar(packet.FieldIPSrc, "NOPE"))
	bb.MustBuild()
}

func TestStageAndPredStrings(t *testing.T) {
	pr := EqVar(packet.FieldIPSrc, "A")
	if pr.String() != "ip.src == $A" {
		t.Errorf("Pred.String = %q", pr.String())
	}
	bd := Binding{Var: "A", Field: packet.FieldIPSrc}
	if bd.String() != "$A := ip.src" {
		t.Errorf("Binding.String = %q", bd.String())
	}
	p := CatalogByName(DefaultParams(), "firewall-basic")
	if got := p.String(); !strings.Contains(got, "firewall-basic") || !strings.Contains(got, "2 observations") {
		t.Errorf("Property.String = %q", got)
	}
	for _, c := range []EventClass{AnyPacket, Arrival, Egress, OutOfBand} {
		if c.String() == "" {
			t.Error("empty EventClass string")
		}
	}
	for _, o := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if o.String() == "" {
			t.Error("empty CmpOp string")
		}
	}
}
