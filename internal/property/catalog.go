package property

import (
	"time"

	"switchmon/internal/packet"
)

// Params carries the concrete scenario constants the catalogue properties
// are written against (switch port roles, knock sequences, pool sizes).
// The simulated topologies in internal/apps use the same values.
type Params struct {
	// InternalPort and ExternalPort are the switch ports facing the
	// protected network and the outside (firewall / NAT scenarios).
	InternalPort uint64
	ExternalPort uint64
	// FirewallWindow is the stateful firewall's connection idle timeout.
	FirewallWindow time.Duration
	// ReplyWindow is the maximum wait for proxies to answer (ARP, DHCP).
	ReplyWindow time.Duration
	// Knock1, Knock2, Knock3 are the port-knocking sequence; KnockDoor is
	// the protected port the sequence opens.
	Knock1, Knock2, Knock3 uint64
	KnockDoor              uint64
	// PoolFirstPort and PoolSize describe the load balancer's backend
	// ports: PoolFirstPort .. PoolFirstPort+PoolSize-1.
	PoolFirstPort uint64
	PoolSize      uint64
	// FTPDataPort is the server's source port for active-mode data
	// connections (conventionally 20).
	FTPDataPort uint64
}

// DefaultParams returns the constants used by the examples, integration
// tests, and benchmarks.
func DefaultParams() Params {
	return Params{
		InternalPort:   1,
		ExternalPort:   2,
		FirewallWindow: 60 * time.Second,
		ReplyWindow:    2 * time.Second,
		Knock1:         7001,
		Knock2:         7002,
		Knock3:         7003,
		KnockDoor:      22,
		PoolFirstPort:  10,
		PoolSize:       4,
		FTPDataPort:    20,
	}
}

// CatalogEntry pairs a property with its provenance in the paper.
type CatalogEntry struct {
	// Group is the Table 1 grouping ("Stateful Firewall", "DHCP", ...).
	Group string
	// Source says where in the paper the property comes from ("Sec 2.1",
	// "Table 1").
	Source string
	Prop   *Property
}

// Catalog builds every property discussed in the paper — the in-text
// examples of Sections 1-2 and all thirteen Table 1 rows — instantiated
// with the given parameters. The properties are the repository's
// executable rendering of the paper's informal timeline diagrams; where a
// diagram is ambiguous the encoding choices are documented inline.
func Catalog(pm Params) []CatalogEntry {
	var entries []CatalogEntry
	add := func(group, source string, p *Property) {
		entries = append(entries, CatalogEntry{Group: group, Source: source, Prop: p})
	}

	// ------------------------------------------------------------------
	// Sec. 1: learning switch. "Once a destination D is learned, packets
	// to D are unicast on the appropriate port." The dataplane emits one
	// egress observation per output port, so a broadcast of a learned
	// destination also surfaces as an egress with out_port != the learned
	// port.
	{
		b := New("lswitch-unicast",
			"once a destination D is learned, packets to D are unicast on the appropriate port")
		b.OnArrival("learn").
			Bind("D", packet.FieldEthSrc).
			Bind("P", packet.FieldInPort)
		b.OnEgress("misforward").
			Where(EqVar(packet.FieldEthDst, "D"),
				Eq(packet.FieldDropped, 0),
				NeVar(packet.FieldOutPort, "P"))
		add("Learning Switch", "Sec 1", b.MustBuild())
	}

	// Sec. 2.4: multiple match. "Link-down messages delete the set of
	// learned destinations": after a link-down on D's port, a unicast to D
	// without an intervening re-learn is a violation.
	{
		b := New("lswitch-linkdown",
			"link-down messages delete the set of learned destinations")
		b.OnArrival("learn").
			Bind("D", packet.FieldEthSrc).
			Bind("P", packet.FieldInPort)
		b.OnOutOfBand("link-down").
			Where(Eq(packet.FieldOOBKind, uint64(packet.OOBLinkDown)),
				EqVar(packet.FieldOOBPort, "P"))
		b.OnEgress("stale-unicast").
			Where(EqVar(packet.FieldEthDst, "D"),
				Eq(packet.FieldMulticast, 0),
				Eq(packet.FieldDropped, 0)).
			Until(Arrival, EqVar(packet.FieldEthSrc, "D"))
		add("Learning Switch", "Sec 2.4", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Sec. 2.1: stateful firewall, three refinements.
	fwFirst := func(b *Builder) {
		b.OnArrival("outgoing").
			Where(Eq(packet.FieldInPort, pm.InternalPort)).
			Bind("A", packet.FieldIPSrc).
			Bind("B", packet.FieldIPDst)
	}
	{
		b := New("firewall-basic",
			"after traffic from internal A to external B, packets from B to A are not dropped")
		fwFirst(b)
		b.OnEgress("return-dropped").
			Where(EqVar(packet.FieldIPSrc, "B"),
				EqVar(packet.FieldIPDst, "A"),
				Eq(packet.FieldDropped, 1))
		add("Stateful Firewall", "Sec 2.1", b.MustBuild())
	}
	{
		b := New("firewall-timeout",
			"for T seconds after traffic from A to B, packets from B to A are not dropped")
		fwFirst(b)
		b.OnEgress("return-dropped").
			Where(EqVar(packet.FieldIPSrc, "B"),
				EqVar(packet.FieldIPDst, "A"),
				Eq(packet.FieldDropped, 1)).
			Within(pm.FirewallWindow)
		add("Stateful Firewall", "Sec 2.1 (Feature 3)", b.MustBuild())
	}
	{
		b := New("firewall-until-close",
			"for T seconds after traffic from A to B, or until the connection is closed, packets from B to A are not dropped")
		fwFirst(b)
		b.OnEgress("return-dropped").
			Where(EqVar(packet.FieldIPSrc, "B"),
				EqVar(packet.FieldIPDst, "A"),
				Eq(packet.FieldDropped, 1)).
			Within(pm.FirewallWindow).
			// Either side closing (FIN) or aborting (RST) discharges the
			// obligation to admit return traffic.
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "A"), EqVar(packet.FieldIPDst, "B"), Eq(packet.FieldTCPFin, 1)).
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "B"), EqVar(packet.FieldIPDst, "A"), Eq(packet.FieldTCPFin, 1)).
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "A"), EqVar(packet.FieldIPDst, "B"), Eq(packet.FieldTCPRst, 1)).
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "B"), EqVar(packet.FieldIPDst, "A"), Eq(packet.FieldTCPRst, 1))
		add("Stateful Firewall", "Sec 2.1 (Feature 4)", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Sec. 2.2: NAT reverse translation, four observations.
	{
		b := New("nat-reverse",
			"return packets are translated according to their corresponding initial outgoing translation")
		b.OnArrival("initial").
			Where(Eq(packet.FieldInPort, pm.InternalPort)).
			Bind("A", packet.FieldIPSrc).
			Bind("P", packet.FieldSrcPort).
			Bind("B", packet.FieldIPDst).
			Bind("Q", packet.FieldDstPort)
		b.OnEgress("translated").
			SamePacket(0).
			Where(EqVar(packet.FieldIPDst, "B"),
				EqVar(packet.FieldDstPort, "Q"),
				NeVar(packet.FieldIPSrc, "A"),
				Eq(packet.FieldDropped, 0)).
			Bind("A2", packet.FieldIPSrc).
			Bind("P2", packet.FieldSrcPort)
		b.OnArrival("return").
			Where(Eq(packet.FieldInPort, pm.ExternalPort),
				EqVar(packet.FieldIPSrc, "B"),
				EqVar(packet.FieldSrcPort, "Q"),
				EqVar(packet.FieldIPDst, "A2"),
				EqVar(packet.FieldDstPort, "P2"))
		b.OnEgress("mistranslated").
			SamePacket(2).
			Where(Eq(packet.FieldDropped, 0)).
			MatchAny(
				PredGroup{NeVar(packet.FieldIPDst, "A")},
				PredGroup{NeVar(packet.FieldDstPort, "P")},
			)
		add("NAT", "Sec 2.2", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Sec. 2.3 + Table 1: ARP cache proxy.
	{
		// In-text Sec 2.3: "if the switch receives a request for a known
		// MAC address, it will send a reply within T seconds."
		b := New("arp-proxy-reply",
			"requests for known addresses are answered within T seconds")
		b.OnArrival("mapping").
			Where(Eq(packet.FieldEthType, uint64(packet.EtherTypeARP))).
			Bind("I", packet.FieldARPSenderIP).
			Bind("M", packet.FieldARPSenderMAC)
		b.OnArrival("request").
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPRequest)),
				EqVar(packet.FieldARPTargetIP, "I"))
		b.UnlessWithin("no-reply", Egress, pm.ReplyWindow).
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPReply)),
				EqVar(packet.FieldARPSenderIP, "I"),
				Eq(packet.FieldDropped, 0))
		add("ARP Cache Proxy", "Sec 2.3", b.MustBuild())
	}
	{
		// Table 1 row 1: requests for known addresses are not forwarded.
		b := New("arp-known-not-forwarded",
			"requests for known addresses are not forwarded")
		b.OnArrival("mapping").
			Where(Eq(packet.FieldEthType, uint64(packet.EtherTypeARP))).
			Bind("I", packet.FieldARPSenderIP)
		b.OnEgress("forwarded-anyway").
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPRequest)),
				EqVar(packet.FieldARPTargetIP, "I"),
				Eq(packet.FieldDropped, 0))
		add("ARP Cache Proxy", "Table 1", b.MustBuild())
	}
	{
		// Table 1 row 2: requests for unknown addresses are forwarded.
		// "Unknown" is encoded by obligation: if a mapping for the address
		// shows up (so a proxy reply becomes legitimate), or the proxy
		// answers, the instance is discharged; otherwise the request
		// packet itself must egress within the window.
		b := New("arp-unknown-forwarded",
			"requests for unknown addresses are forwarded")
		b.OnArrival("request").
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPRequest))).
			Bind("I", packet.FieldARPTargetIP)
		b.UnlessWithin("not-forwarded", Egress, pm.ReplyWindow).
			SamePacket(0).
			Where(Eq(packet.FieldDropped, 0)).
			Until(Arrival, EqVar(packet.FieldARPSenderIP, "I")).
			Until(Egress, Eq(packet.FieldARPOp, uint64(packet.ARPReply)), EqVar(packet.FieldARPSenderIP, "I"), Eq(packet.FieldDropped, 0))
		add("ARP Cache Proxy", "Table 1", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Table 1: port knocking (from Varanus).
	{
		b := New("knock-intervening",
			"intervening guesses invalidate the knock sequence")
		b.OnArrival("knock1").
			Where(Eq(packet.FieldDstPort, pm.Knock1)).
			Bind("H", packet.FieldIPSrc)
		b.OnArrival("wrong-guess").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Ne(packet.FieldDstPort, pm.Knock2))
		b.OnArrival("knock2").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldDstPort, pm.Knock2))
		b.OnArrival("knock3").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldDstPort, pm.Knock3))
		b.OnEgress("door-opened").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldDstPort, pm.KnockDoor),
				Eq(packet.FieldDropped, 0))
		add("Port Knocking", "Table 1", b.MustBuild())
	}
	{
		b := New("knock-valid-sequence",
			"a valid knock sequence opens the door")
		b.OnArrival("knock1").
			Where(Eq(packet.FieldDstPort, pm.Knock1)).
			Bind("H", packet.FieldIPSrc)
		b.OnArrival("knock2").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldDstPort, pm.Knock2)).
			Until(Arrival, EqVar(packet.FieldIPSrc, "H"), Ne(packet.FieldDstPort, pm.Knock2))
		b.OnArrival("knock3").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldDstPort, pm.Knock3)).
			Until(Arrival, EqVar(packet.FieldIPSrc, "H"), Ne(packet.FieldDstPort, pm.Knock3))
		b.OnEgress("door-stayed-closed").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldDstPort, pm.KnockDoor),
				Eq(packet.FieldDropped, 1))
		add("Port Knocking", "Table 1", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Table 1: load balancing.
	flowFields := []packet.Field{
		packet.FieldIPSrc, packet.FieldIPDst,
		packet.FieldSrcPort, packet.FieldDstPort,
	}
	closeGuards := func(sb *StageBuilder) *StageBuilder {
		return sb.
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "A"), EqVar(packet.FieldIPDst, "B"), Eq(packet.FieldTCPFin, 1)).
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "B"), EqVar(packet.FieldIPDst, "A"), Eq(packet.FieldTCPFin, 1)).
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "A"), EqVar(packet.FieldIPDst, "B"), Eq(packet.FieldTCPRst, 1)).
			Until(AnyPacket, EqVar(packet.FieldIPSrc, "B"), EqVar(packet.FieldIPDst, "A"), Eq(packet.FieldTCPRst, 1))
	}
	{
		// New flows go to the hashed port; the hash is symmetric, so both
		// directions of the flow must leave on the same backend port until
		// the flow closes.
		b := New("lb-hashed",
			"new flows go to the port selected by the symmetric flow hash")
		b.OnArrival("new-flow").
			Where(Eq(packet.FieldTCPSyn, 1),
				Eq(packet.FieldInPort, pm.InternalPort)).
			Bind("A", packet.FieldIPSrc).
			Bind("B", packet.FieldIPDst).
			Bind("PA", packet.FieldSrcPort).
			Bind("PB", packet.FieldDstPort)
		sb := b.OnEgress("wrong-port").
			Where(Eq(packet.FieldDropped, 0)).
			MatchAny(
				PredGroup{
					EqVar(packet.FieldIPSrc, "A"), EqVar(packet.FieldIPDst, "B"),
					EqVar(packet.FieldSrcPort, "PA"), EqVar(packet.FieldDstPort, "PB"),
					{Field: packet.FieldOutPort, Op: OpNe, Arg: HashOf(pm.PoolSize, pm.PoolFirstPort, flowFields...)},
				},
				PredGroup{
					EqVar(packet.FieldIPSrc, "B"), EqVar(packet.FieldIPDst, "A"),
					EqVar(packet.FieldSrcPort, "PB"), EqVar(packet.FieldDstPort, "PA"),
					{Field: packet.FieldOutPort, Op: OpNe, Arg: HashOf(pm.PoolSize, pm.PoolFirstPort, flowFields...)},
				},
			)
		closeGuards(sb)
		add("Load Balancing", "Table 1", b.MustBuild())
	}
	{
		// New flows go to the round-robin port: two consecutive new flows
		// must not land on the same backend port.
		b := New("lb-round-robin",
			"consecutive new flows go to distinct round-robin ports")
		b.OnArrival("flow-i").
			Where(Eq(packet.FieldTCPSyn, 1),
				Eq(packet.FieldInPort, pm.InternalPort))
		b.OnEgress("flow-i-out").
			SamePacket(0).
			Where(Eq(packet.FieldDropped, 0)).
			Bind("P", packet.FieldOutPort)
		b.OnArrival("flow-i+1").
			Where(Eq(packet.FieldTCPSyn, 1),
				Eq(packet.FieldInPort, pm.InternalPort))
		b.OnEgress("same-port-again").
			SamePacket(2).
			Where(Eq(packet.FieldDropped, 0),
				EqVar(packet.FieldOutPort, "P"))
		add("Load Balancing", "Table 1", b.MustBuild())
	}
	{
		// No change in port until flow closed: forward packets stay on the
		// chosen backend port, return packets stay on the client's ingress
		// port.
		b := New("lb-sticky",
			"a flow's port assignment does not change until the flow closes")
		b.OnArrival("new-flow").
			Where(Eq(packet.FieldTCPSyn, 1)).
			Bind("A", packet.FieldIPSrc).
			Bind("B", packet.FieldIPDst).
			Bind("PA", packet.FieldSrcPort).
			Bind("PB", packet.FieldDstPort).
			Bind("IN", packet.FieldInPort)
		b.OnEgress("assigned").
			SamePacket(0).
			Where(Eq(packet.FieldDropped, 0)).
			Bind("P", packet.FieldOutPort)
		sb := b.OnEgress("moved").
			Where(Eq(packet.FieldDropped, 0)).
			MatchAny(
				PredGroup{
					EqVar(packet.FieldIPSrc, "A"), EqVar(packet.FieldIPDst, "B"),
					EqVar(packet.FieldSrcPort, "PA"), EqVar(packet.FieldDstPort, "PB"),
					NeVar(packet.FieldOutPort, "P"),
				},
				PredGroup{
					EqVar(packet.FieldIPSrc, "B"), EqVar(packet.FieldIPDst, "A"),
					EqVar(packet.FieldSrcPort, "PB"), EqVar(packet.FieldDstPort, "PA"),
					NeVar(packet.FieldOutPort, "IN"),
				},
			)
		closeGuards(sb)
		add("Load Balancing", "Table 1", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Table 1: FTP (from FAST). The server must open the data connection
	// to the port announced in the control stream's PORT command.
	{
		b := New("ftp-data-port",
			"the data connection's L4 port matches the port given in the control stream")
		b.OnArrival("port-command").
			Where(EqStr(packet.FieldFTPCommand, "PORT")).
			Bind("C", packet.FieldIPSrc).
			Bind("S", packet.FieldIPDst).
			Bind("DP", packet.FieldFTPDataPort)
		b.OnEgress("data-to-wrong-port").
			Where(EqVar(packet.FieldIPSrc, "S"),
				EqVar(packet.FieldIPDst, "C"),
				Eq(packet.FieldSrcPort, pm.FTPDataPort),
				Eq(packet.FieldTCPSyn, 1),
				NeVar(packet.FieldDstPort, "DP"),
				Eq(packet.FieldDropped, 0))
		add("FTP", "Table 1 (from FAST)", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Table 1: DHCP.
	{
		b := New("dhcp-reply-within",
			"the server replies to a lease request within T seconds")
		b.OnArrival("request").
			Where(Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPRequest))).
			Bind("X", packet.FieldDHCPXid).
			Bind("M", packet.FieldDHCPClientMAC)
		b.UnlessWithin("no-reply", Egress, pm.ReplyWindow).
			Where(EqVar(packet.FieldDHCPXid, "X"),
				Eq(packet.FieldDropped, 0))
		add("DHCP", "Table 1", b.MustBuild())
	}
	{
		b := New("dhcp-no-reuse",
			"leased addresses are never re-used until expiration or release")
		b.OnEgress("lease").
			Where(Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPAck)),
				Eq(packet.FieldDropped, 0)).
			Bind("IP", packet.FieldDHCPYourIP).
			Bind("M", packet.FieldDHCPClientMAC).
			Bind("L", packet.FieldDHCPLeaseSecs)
		b.OnEgress("re-leased").
			Where(Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPAck)),
				EqVar(packet.FieldDHCPYourIP, "IP"),
				NeVar(packet.FieldDHCPClientMAC, "M"),
				Eq(packet.FieldDropped, 0)).
			WithinVar("L").
			Until(Arrival, Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPRelease)), EqVar(packet.FieldDHCPClientMAC, "M"))
		add("DHCP", "Table 1", b.MustBuild())
	}
	{
		b := New("dhcp-no-overlap",
			"no lease overlap between DHCP servers")
		b.OnEgress("lease-1").
			Where(Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPAck)),
				Eq(packet.FieldDropped, 0)).
			Bind("IP", packet.FieldDHCPYourIP).
			Bind("S", packet.FieldDHCPServerID).
			Bind("L", packet.FieldDHCPLeaseSecs)
		b.OnEgress("lease-2").
			Where(Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPAck)),
				EqVar(packet.FieldDHCPYourIP, "IP"),
				NeVar(packet.FieldDHCPServerID, "S"),
				Eq(packet.FieldDropped, 0)).
			WithinVar("L")
		add("DHCP", "Table 1", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Table 1: DHCP + ARP proxy (wandering match).
	{
		b := New("dhcparp-preload",
			"the ARP cache is pre-loaded with leased addresses")
		b.OnEgress("lease").
			Where(Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPAck)),
				Eq(packet.FieldDropped, 0)).
			Bind("IP", packet.FieldDHCPYourIP).
			Bind("M", packet.FieldDHCPClientMAC)
		b.OnArrival("arp-request").
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPRequest)),
				EqVar(packet.FieldARPTargetIP, "IP"))
		b.UnlessWithin("no-reply", Egress, pm.ReplyWindow).
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPReply)),
				EqVar(packet.FieldARPSenderIP, "IP"),
				EqVar(packet.FieldARPSenderMAC, "M"),
				Eq(packet.FieldDropped, 0))
		add("DHCP + ARP Proxy", "Table 1", b.MustBuild())
	}
	{
		b := New("dhcparp-no-direct-reply",
			"no direct reply if the address is neither pre-loaded nor a prior reply was seen")
		b.OnArrival("request").
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPRequest))).
			Bind("I", packet.FieldARPTargetIP)
		b.OnEgress("unjustified-reply").
			Where(Eq(packet.FieldARPOp, uint64(packet.ARPReply)),
				EqVar(packet.FieldARPSenderIP, "I"),
				Eq(packet.FieldDropped, 0)).
			// A DHCP lease for the address, or a prior ARP reply from the
			// real owner, justifies answering from the cache — permanently
			// (sticky), since justification seen at any earlier time makes
			// later cached replies legitimate.
			UntilSticky(Egress, Eq(packet.FieldDHCPMsgType, uint64(packet.DHCPAck)), EqVar(packet.FieldDHCPYourIP, "I"), Eq(packet.FieldDropped, 0)).
			UntilSticky(Arrival, Eq(packet.FieldARPOp, uint64(packet.ARPReply)), EqVar(packet.FieldARPSenderIP, "I"))
		add("DHCP + ARP Proxy", "Table 1", b.MustBuild())
	}

	// ------------------------------------------------------------------
	// Extensions beyond the paper: quantitative (counting) properties.
	// The paper's conclusion limits its scope to "boolean conditions,
	// rather than quantitative measurements"; these two properties
	// exercise the counting extension that lifts that limit.
	{
		// Port-scan detection: a violation is one host probing many
		// distinct ports in a short window while the scanned traffic is
		// actually forwarded (a guard that should have been closed).
		b := New("portscan-detect",
			"no host reaches 10 distinct destination ports within 10 seconds")
		b.OnArrival("first-probe").
			Where(Eq(packet.FieldTCPSyn, 1)).
			Bind("H", packet.FieldIPSrc)
		b.OnArrival("scan").
			Where(EqVar(packet.FieldIPSrc, "H"),
				Eq(packet.FieldTCPSyn, 1)).
			CountDistinct(10, packet.FieldDstPort).
			Within(10 * time.Second)
		add("Extensions", "beyond paper (quantitative)", b.MustBuild())
	}
	{
		// Heavy-hitter detection (FAST's motivating app): a flow sending
		// 100 packets within one second.
		b := New("heavy-hitter",
			"no flow sends 100 packets within one second")
		b.OnArrival("flow-start").
			Bind("A", packet.FieldIPSrc).
			Bind("B", packet.FieldIPDst).
			Bind("PA", packet.FieldSrcPort).
			Bind("PB", packet.FieldDstPort)
		b.OnArrival("burst").
			Where(EqVar(packet.FieldIPSrc, "A"),
				EqVar(packet.FieldIPDst, "B"),
				EqVar(packet.FieldSrcPort, "PA"),
				EqVar(packet.FieldDstPort, "PB")).
			Count(100).
			Within(time.Second)
		add("Extensions", "beyond paper (quantitative)", b.MustBuild())
	}

	{
		// DNS response integrity: a response forwarded for a known query
		// id must answer the question that was asked. Exercises
		// string-valued instance keys (the query name).
		b := New("dns-response-match",
			"forwarded DNS responses answer the query their id belongs to")
		b.OnArrival("query").
			Where(Eq(packet.FieldDNSResponse, 0)).
			Bind("ID", packet.FieldDNSID).
			Bind("Q", packet.FieldDNSQName).
			Bind("C", packet.FieldIPSrc)
		b.OnEgress("mismatched-response").
			Where(Eq(packet.FieldDNSResponse, 1),
				EqVar(packet.FieldDNSID, "ID"),
				EqVar(packet.FieldIPDst, "C"),
				NeVar(packet.FieldDNSQName, "Q"),
				Eq(packet.FieldDropped, 0))
		add("Extensions", "beyond paper (DNS)", b.MustBuild())
	}
	{
		// Ping liveness: an echo request crossing the switch must be
		// followed by the matching echo reply within the window — the
		// ARP-proxy pattern (Feature 7) at ICMP.
		b := New("ping-reply-within",
			"an echo request is answered by the matching echo reply within T")
		b.OnArrival("request").
			Where(Eq(packet.FieldICMPType, 8)).
			Bind("ID", packet.FieldICMPID).
			Bind("S", packet.FieldIPSrc).
			Bind("D", packet.FieldIPDst)
		b.UnlessWithin("no-reply", Egress, pm.ReplyWindow).
			Where(Eq(packet.FieldICMPType, 0),
				EqVar(packet.FieldICMPID, "ID"),
				EqVar(packet.FieldIPSrc, "D"),
				EqVar(packet.FieldIPDst, "S"),
				Eq(packet.FieldDropped, 0))
		add("Extensions", "beyond paper (ICMP)", b.MustBuild())
	}

	return entries
}

// CatalogByName returns the named catalogue property, or nil.
func CatalogByName(pm Params, name string) *Property {
	for _, e := range Catalog(pm) {
		if e.Prop.Name == name {
			return e.Prop
		}
	}
	return nil
}
