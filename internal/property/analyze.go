package property

import (
	"strings"

	"switchmon/internal/packet"
)

// InstanceID classifies how events map to monitor instances — the paper's
// Feature 8 and the "Inst. ID" column of Table 1.
type InstanceID uint8

// Instance-identification varieties, in increasing order of difficulty for
// switch hardware (Sec. 3.2, "Instance identification").
const (
	// IDExact: every later stage matches bound variables against fields of
	// the same protocol they were bound from, with no flow-direction
	// inversion; a fixed tuple identifies the instance.
	IDExact InstanceID = iota
	// IDSymmetric: later stages match bound variables against the
	// direction-inverted counterpart fields (src against dst), as in
	// connection tracking.
	IDSymmetric
	// IDWandering: later stages match bound variables against fields of
	// *different protocols* than they were bound from (e.g. a DHCP lease
	// address matched against ARP traffic).
	IDWandering
)

// String renders the Table 1 notation.
func (id InstanceID) String() string {
	switch id {
	case IDExact:
		return "exact"
	case IDSymmetric:
		return "symmetric"
	case IDWandering:
		return "wandering"
	default:
		return "unknown"
	}
}

// Features is the derived requirement vector of a property — one boolean
// per Table 1 column plus the instance-identification class. Regenerating
// Table 1 means calling Analyze on each catalogue property and printing
// this struct.
type Features struct {
	// MaxLayer is the deepest packet parsing required ("Fields" column).
	// Switch metadata fields do not count: they require pipeline
	// integration, not parsing (tracked by EgressVisibility below).
	MaxLayer packet.Layer
	// History: the property spans multiple observations (Feature 2).
	History bool
	// Timeouts: some stage carries an expiry window (Feature 3).
	Timeouts bool
	// Obligation: some stage carries until-guards (Feature 4).
	Obligation bool
	// Identity: some stage requires same-packet correlation (Feature 5).
	Identity bool
	// NegMatch: some predicate uses a non-equality comparison, requiring
	// state or expectations to be matched negatively (Feature 6).
	NegMatch bool
	// TimeoutActions: some stage is a negative observation — a timeout
	// firing advances the instance instead of merely expiring state
	// (Feature 7).
	TimeoutActions bool
	// DropVisibility: some stage matches on the drop decision — the
	// dropped-packet gap of Sec. 3.2.
	DropVisibility bool
	// EgressVisibility: some stage inspects egress metadata (output port,
	// multicast, drop) and therefore needs pipeline stages after the
	// output decision.
	EgressVisibility bool
	// MultipleMatch: some event must advance more than one instance at
	// once (Sec. 2.4, out-of-band events).
	MultipleMatch bool
	// OutOfBand: some stage or guard matches non-packet events.
	OutOfBand bool
	// ExtrinsicState: some predicate uses a computed operand (hash),
	// FAST's extrinsic-state facility.
	ExtrinsicState bool
	// Counting: some stage requires a quantitative threshold (MinCount >
	// 1) — the beyond-boolean extension the paper's conclusion defers.
	Counting bool
	// Sticky: some guard discharges permanently (retroactive
	// suppression) — this repository's extension for "unless previously
	// justified" properties.
	Sticky bool
	// InstanceID is the identification variety ("Inst. ID" column).
	InstanceID InstanceID
}

// symmetricPairs maps flow-direction fields to their inverses. Only true
// directional pairs are listed: matching a variable across one of these
// means the instance key is a connection observed from both ends.
var symmetricPairs = map[packet.Field]packet.Field{
	packet.FieldEthSrc:  packet.FieldEthDst,
	packet.FieldEthDst:  packet.FieldEthSrc,
	packet.FieldIPSrc:   packet.FieldIPDst,
	packet.FieldIPDst:   packet.FieldIPSrc,
	packet.FieldSrcPort: packet.FieldDstPort,
	packet.FieldDstPort: packet.FieldSrcPort,
}

// protocolOf groups fields by protocol (the prefix of their dotted name);
// matching a variable across protocol groups is wandering match.
// Flow fields (ip.*, l4.*, eth.*) are grouped together: binding an IP
// address and matching it against the port field would be nonsense the
// validator cannot see, but binding ip.src and matching l4-layer flows is
// still one parser's worth of keys.
func protocolOf(f packet.Field) string {
	if f.Layer() == packet.LayerMeta {
		return "meta"
	}
	name := f.String()
	if i := strings.IndexByte(name, '.'); i >= 0 {
		p := name[:i]
		switch p {
		case "ip", "l4", "eth", "tcp", "icmp":
			return "flow"
		}
		return p
	}
	return "meta"
}

// Analyze derives the feature requirements of a property. The property
// must be valid.
func Analyze(p *Property) Features {
	var ft Features
	ft.History = len(p.Stages) > 1

	// boundFrom records, per variable, every field it is bound from.
	boundFrom := map[Var][]packet.Field{}
	id := IDExact

	notePred := func(pr Pred, stageIdx int) {
		if l := pr.Field.Layer(); l > ft.MaxLayer {
			ft.MaxLayer = l
		}
		switch pr.Field {
		case packet.FieldDropped:
			ft.DropVisibility = true
			ft.EgressVisibility = true
		case packet.FieldOutPort, packet.FieldMulticast:
			ft.EgressVisibility = true
		}
		if pr.Op != OpEq {
			ft.NegMatch = true
		}
		switch pr.Arg.Kind {
		case OperandHash:
			ft.ExtrinsicState = true
			for _, f := range pr.Arg.Hash.Fields {
				if l := f.Layer(); l > ft.MaxLayer {
					ft.MaxLayer = l
				}
			}
		case OperandVar:
			// Instance-ID classification: compare the matched field with
			// the fields the variable was bound from.
			if stageIdx > 0 {
				for _, src := range boundFrom[pr.Arg.Var] {
					switch {
					case src == pr.Field:
						// exact — no escalation
					case symmetricPairs[src] == pr.Field:
						if id == IDExact {
							id = IDSymmetric
						}
					case protocolOf(src) != protocolOf(pr.Field):
						id = IDWandering
					default:
						// Same protocol group, different field (e.g.
						// arp.sender_ip bound, arp.target_ip matched):
						// still a single parser's key space — exact.
					}
				}
			}
		}
	}

	for i, s := range p.Stages {
		if s.Class == OutOfBand {
			ft.OutOfBand = true
			// Out-of-band events carry no flow key; after state has been
			// built up they must advance whole sets of instances (the
			// link-down example of Sec. 2.4).
			if i > 0 && len(boundFrom) > 0 {
				ft.MultipleMatch = true
			}
		}
		if s.Negative {
			ft.TimeoutActions = true
		} else if (s.Window > 0 || s.WindowVar != "") && i > 0 {
			ft.Timeouts = true
		}
		if len(s.Until) > 0 {
			ft.Obligation = true
		}
		if s.MinCount > 1 {
			ft.Counting = true
			if s.CountDistinct != 0 {
				if l := s.CountDistinct.Layer(); l > ft.MaxLayer {
					ft.MaxLayer = l
				}
			}
		}
		if s.SamePacketAs >= 0 {
			ft.Identity = true
		}
		for _, pr := range s.Preds {
			notePred(pr, i)
		}
		for _, g := range s.AnyOf {
			for _, pr := range g {
				notePred(pr, i)
			}
		}
		for _, g := range s.Until {
			if g.Class == OutOfBand {
				ft.OutOfBand = true
			}
			if g.Sticky {
				ft.Sticky = true
			}
			for _, pr := range g.Preds {
				notePred(pr, i)
			}
		}
		for _, b := range s.Binds {
			if l := b.Field.Layer(); l > ft.MaxLayer {
				ft.MaxLayer = l
			}
			boundFrom[b.Var] = append(boundFrom[b.Var], b.Field)
		}
		// A non-first packet stage with no variable-equality predicate and
		// no packet-identity link can advance every instance waiting at
		// it: multiple match.
		if i > 0 && !s.Negative && s.Class != OutOfBand &&
			len(boundFrom) > 0 && s.SamePacketAs < 0 && !stageSelectsInstances(s) {
			ft.MultipleMatch = true
		}
	}
	ft.InstanceID = id
	return ft
}

// stageSelectsInstances reports whether the stage's predicates include at
// least one equality against a bound variable — the hook an index uses to
// narrow the set of instances an event can advance.
func stageSelectsInstances(s Stage) bool {
	for _, pr := range s.Preds {
		if pr.Arg.IsVar() && pr.Op == OpEq {
			return true
		}
	}
	for _, g := range s.AnyOf {
		for _, pr := range g {
			if pr.Arg.IsVar() && pr.Op == OpEq {
				return true
			}
		}
	}
	return false
}
