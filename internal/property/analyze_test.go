package property

import (
	"testing"

	"switchmon/internal/packet"
)

// goldenFeatures is the derived requirement vector for every catalogue
// property. These are the repository's precise renderings of the paper's
// Table 1 rows; EXPERIMENTS.md discusses the cells where our derivation
// differs from the paper's informal table.
var goldenFeatures = map[string]Features{
	"lswitch-unicast": {
		MaxLayer: packet.Layer2, History: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"lswitch-linkdown": {
		MaxLayer: packet.Layer2, History: true, Obligation: true,
		MultipleMatch: true, OutOfBand: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"firewall-basic": {
		MaxLayer: packet.Layer3, History: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"firewall-timeout": {
		MaxLayer: packet.Layer3, History: true, Timeouts: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"firewall-until-close": {
		MaxLayer: packet.Layer4, History: true, Timeouts: true, Obligation: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"nat-reverse": {
		MaxLayer: packet.Layer4, History: true, Identity: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"arp-proxy-reply": {
		MaxLayer: packet.Layer3, History: true, TimeoutActions: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"arp-known-not-forwarded": {
		MaxLayer: packet.Layer3, History: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"arp-unknown-forwarded": {
		MaxLayer: packet.Layer3, History: true, Obligation: true, Identity: true,
		TimeoutActions: true, DropVisibility: true, EgressVisibility: true,
		InstanceID: IDExact,
	},
	"knock-intervening": {
		MaxLayer: packet.Layer4, History: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"knock-valid-sequence": {
		MaxLayer: packet.Layer4, History: true, Obligation: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"lb-hashed": {
		MaxLayer: packet.Layer4, History: true, Obligation: true, NegMatch: true,
		ExtrinsicState: true, DropVisibility: true, EgressVisibility: true,
		InstanceID: IDSymmetric,
	},
	"lb-round-robin": {
		MaxLayer: packet.Layer4, History: true, Identity: true, MultipleMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"lb-sticky": {
		MaxLayer: packet.Layer4, History: true, Identity: true, Obligation: true,
		NegMatch: true, DropVisibility: true, EgressVisibility: true,
		InstanceID: IDSymmetric,
	},
	"ftp-data-port": {
		MaxLayer: packet.Layer7, History: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDWandering,
	},
	"dhcp-reply-within": {
		MaxLayer: packet.Layer7, History: true, TimeoutActions: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"dhcp-no-reuse": {
		MaxLayer: packet.Layer7, History: true, Timeouts: true, Obligation: true,
		NegMatch: true, DropVisibility: true, EgressVisibility: true,
		InstanceID: IDExact,
	},
	"dhcp-no-overlap": {
		MaxLayer: packet.Layer7, History: true, Timeouts: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDExact,
	},
	"dhcparp-preload": {
		MaxLayer: packet.Layer7, History: true, TimeoutActions: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDWandering,
	},
	"dhcparp-no-direct-reply": {
		MaxLayer: packet.Layer7, History: true, Obligation: true, Sticky: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDWandering,
	},
	"portscan-detect": {
		MaxLayer: packet.Layer4, History: true, Timeouts: true, Counting: true,
		InstanceID: IDExact,
	},
	"heavy-hitter": {
		MaxLayer: packet.Layer4, History: true, Timeouts: true, Counting: true,
		InstanceID: IDExact,
	},
	"dns-response-match": {
		MaxLayer: packet.Layer7, History: true, NegMatch: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
	"ping-reply-within": {
		MaxLayer: packet.Layer4, History: true, TimeoutActions: true,
		DropVisibility: true, EgressVisibility: true, InstanceID: IDSymmetric,
	},
}

func TestAnalyzeCatalog(t *testing.T) {
	entries := Catalog(DefaultParams())
	if len(entries) != len(goldenFeatures) {
		t.Fatalf("catalogue has %d entries, golden table has %d", len(entries), len(goldenFeatures))
	}
	for _, e := range entries {
		want, ok := goldenFeatures[e.Prop.Name]
		if !ok {
			t.Errorf("no golden features for %s", e.Prop.Name)
			continue
		}
		got := Analyze(e.Prop)
		if got != want {
			t.Errorf("Analyze(%s) =\n  %+v\nwant\n  %+v", e.Prop.Name, got, want)
		}
	}
}

func TestAnalyzeSingleStageNoHistory(t *testing.T) {
	b := New("single", "one observation needs no history")
	b.OnArrival("only").Where(Eq(packet.FieldIPProto, 6))
	ft := Analyze(b.MustBuild())
	if ft.History {
		t.Error("single-stage property reports History")
	}
	if ft.MaxLayer != packet.Layer3 {
		t.Errorf("MaxLayer = %v, want L3", ft.MaxLayer)
	}
}

func TestAnalyzeWindowOnFirstStageIsNotTimeout(t *testing.T) {
	// A window on the first stage has nothing to be relative to; Analyze
	// must not count it.
	p := &Property{Name: "w", Stages: []Stage{
		{Label: "a", SamePacketAs: -1, Window: 1},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if Analyze(p).Timeouts {
		t.Error("first-stage window counted as Timeouts")
	}
}

func TestInstanceIDStrings(t *testing.T) {
	if IDExact.String() != "exact" || IDSymmetric.String() != "symmetric" || IDWandering.String() != "wandering" {
		t.Fatal("InstanceID strings wrong")
	}
	if InstanceID(99).String() != "unknown" {
		t.Fatal("unknown InstanceID string wrong")
	}
}

func TestAnalyzeBindOnlyLayerCounts(t *testing.T) {
	// Binding from an L7 field must raise MaxLayer even with no L7 preds.
	b := New("bindlayer", "")
	b.OnArrival("a").Bind("X", packet.FieldDHCPXid)
	b.OnArrival("b").Where(EqVar(packet.FieldDHCPXid, "X"))
	ft := Analyze(b.MustBuild())
	if ft.MaxLayer != packet.Layer7 {
		t.Errorf("MaxLayer = %v, want L7", ft.MaxLayer)
	}
	if ft.InstanceID != IDExact {
		t.Errorf("InstanceID = %v, want exact", ft.InstanceID)
	}
}
