// Package property defines the monitor's property language: a violation
// pattern is a sequence of observations which, when completed, witness a
// violation of a correctness property (Sec. 2 of the paper).
//
// The representation is deliberately explicit about the paper's semantic
// features so that Analyze can mechanically derive each property's
// requirements — the repository regenerates the paper's Table 1 from this
// analysis rather than asserting it.
package property

import (
	"fmt"
	"strings"
	"time"

	"switchmon/internal/packet"
)

// Var names a value bound by an earlier observation and referenced by a
// later one. Variables are the paper's cross-packet state: "A", "B" in the
// firewall property, the translated address in the NAT property.
type Var string

// EventClass selects which monitor events an observation can match.
type EventClass uint8

// Event classes.
const (
	// AnyPacket matches both arrivals and departures.
	AnyPacket EventClass = iota
	// Arrival matches a packet entering the switch.
	Arrival
	// Egress matches the switch's forwarding decision for a packet,
	// including decisions to drop (the paper's Feature 5 gap: OpenFlow's
	// egress tables never see drops).
	Egress
	// OutOfBand matches non-packet events such as link-down (Sec. 2.4,
	// multiple match).
	OutOfBand
)

// String names the class.
func (c EventClass) String() string {
	switch c {
	case AnyPacket:
		return "packet"
	case Arrival:
		return "arrival"
	case Egress:
		return "egress"
	case OutOfBand:
		return "oob"
	default:
		return fmt.Sprintf("EventClass(%d)", uint8(c))
	}
}

// CmpOp is a predicate comparison operator.
type CmpOp uint8

// Comparison operators. OpNe against a bound variable is the paper's
// Feature 6 ("negative match").
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the DSL operator token.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(o))
	}
}

// Compare applies the operator to two values. Ordered comparisons between
// a number and a string follow Value.Less (numbers sort first); equality
// between them is simply false.
func (o CmpOp) Compare(a, b packet.Value) bool {
	switch o {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a.Less(b)
	case OpLe:
		return a.Less(b) || a == b
	case OpGt:
		return b.Less(a)
	case OpGe:
		return b.Less(a) || a == b
	default:
		return false
	}
}

// OperandKind discriminates the right-hand side of a predicate.
type OperandKind uint8

// Operand kinds.
const (
	// OperandLit compares against a literal value.
	OperandLit OperandKind = iota
	// OperandVar compares against a variable bound by an earlier stage.
	OperandVar
	// OperandHash compares against a symmetric hash of fields of the
	// *current* event — the extrinsic-state facility FAST demonstrates
	// with hash-based load balancing.
	OperandHash
)

// HashSpec describes a symmetric-hash operand: the listed field values are
// sorted (making the hash direction-invariant for src/dst field sets),
// FNV-1a mixed, and reduced to Base + (hash % Mod).
type HashSpec struct {
	Fields []packet.Field
	Mod    uint64
	Base   uint64
}

// Operand is the right-hand side of a predicate.
type Operand struct {
	Kind OperandKind
	Var  Var
	Lit  packet.Value
	Hash *HashSpec
}

// Lit returns a literal operand.
func Lit(v packet.Value) Operand { return Operand{Lit: v} }

// LitNum returns a literal numeric operand.
func LitNum(n uint64) Operand { return Operand{Lit: packet.Num(n)} }

// LitStr returns a literal string operand.
func LitStr(s string) Operand { return Operand{Lit: packet.Str(s)} }

// Ref returns a variable-reference operand.
func Ref(v Var) Operand { return Operand{Kind: OperandVar, Var: v} }

// HashOf returns a symmetric-hash operand over the given fields.
func HashOf(mod, base uint64, fields ...packet.Field) Operand {
	return Operand{Kind: OperandHash, Hash: &HashSpec{Fields: fields, Mod: mod, Base: base}}
}

// IsVar reports whether the operand references a bound variable.
func (o Operand) IsVar() bool { return o.Kind == OperandVar }

// String renders the operand in DSL syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OperandVar:
		return "$" + string(o.Var)
	case OperandHash:
		names := make([]string, len(o.Hash.Fields))
		for i, f := range o.Hash.Fields {
			names[i] = f.String()
		}
		return fmt.Sprintf("hash(%s; mod %d, base %d)", strings.Join(names, ", "), o.Hash.Mod, o.Hash.Base)
	default:
		return o.Lit.String()
	}
}

// Pred constrains one field of the matched event.
type Pred struct {
	Field packet.Field
	Op    CmpOp
	Arg   Operand
}

// String renders the predicate in DSL syntax.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Field, p.Op, p.Arg)
}

// Binding captures a field of the matched event into a variable, making it
// available to later stages (the paper's Feature 2, event history).
type Binding struct {
	Var   Var
	Field packet.Field
}

// String renders the binding in DSL syntax.
func (b Binding) String() string {
	return fmt.Sprintf("$%s := %s", b.Var, b.Field)
}

// PredGroup is one conjunction inside a Stage's AnyOf disjunction.
type PredGroup []Pred

// Guard is a bare event pattern used for obligations: when an event
// matching the guard occurs while an instance waits at the guarded stage,
// the instance is discharged without violation (the paper's Feature 4,
// "or until the connection is closed").
//
// A Sticky guard discharges *permanently*: the matching event suppresses
// the instance's identity forever, even retroactively — events matching a
// sticky guard seed the suppression set before any instance exists. This
// extension expresses "unless previously justified" properties (the
// paper's "no direct reply if neither pre-loaded nor prior reply seen"),
// which plain until-guards cannot: they forget the justification as soon
// as the instance is discharged. To make retroactive suppression
// well-defined, a sticky guard must carry an equality-against-variable
// predicate for every variable bound before its stage (so the suppressed
// identity can be synthesized from the event alone), and the property
// must not use packet identity in earlier stages.
type Guard struct {
	Class  EventClass
	Preds  []Pred
	Sticky bool
}

// Stage is one observation in a violation pattern.
//
// A positive stage advances when an event of its Class satisfying all
// Preds occurs (within Window of the previous stage, if Window > 0).
//
// A negative stage (Negative == true) is the paper's Feature 7: it
// advances when Window elapses *without* any matching event; a matching
// event before the deadline discharges the instance instead. Its deadline
// is set once, when the stage is entered, and never refreshed — the paper
// notes that refreshing would let a never-answered request train evade
// detection.
type Stage struct {
	// Label names the stage in reports ("outgoing", "return-dropped").
	Label string
	Class EventClass
	// Negative marks a negative observation; Window is then mandatory.
	Negative bool
	Preds    []Pred
	// AnyOf is an optional disjunction: in addition to Preds, at least one
	// group must hold in full. It expresses stages like the NAT property's
	// "destination not equal to A, P" (A'' != A *or* P'' != P).
	AnyOf []PredGroup
	Binds []Binding
	// Window bounds the time since the previous stage (Feature 3). Zero
	// means unbounded for positive stages.
	Window time.Duration
	// WindowVar, when set, takes the window duration in seconds from a
	// bound variable — e.g. a DHCP lease time carried in the lease packet
	// itself. Mutually exclusive with Window.
	WindowVar Var
	// SamePacketAs, when >= 0, requires this stage's event to concern the
	// same packet as the event matched at the given earlier stage index
	// (Feature 5, packet identity — arrival/egress correlation).
	SamePacketAs int
	// MinCount, when > 1, makes this a counting stage: it advances only
	// after MinCount matching events (within Window, if set). This is the
	// quantitative extension the paper's conclusion scopes out as future
	// work ("boolean conditions, rather than quantitative measurements").
	MinCount int
	// CountDistinct, when set on a counting stage, counts only events
	// carrying a new value of the given field — e.g. "10 distinct
	// destination ports" for port-scan detection.
	CountDistinct packet.Field
	// Until lists obligation guards active while an instance waits at this
	// stage (Feature 4).
	Until []Guard
}

// NewStage returns a positive stage with SamePacketAs unset.
func NewStage(label string, class EventClass) Stage {
	return Stage{Label: label, Class: class, SamePacketAs: -1}
}

// Property is a named violation pattern. Completing Stages[len-1]
// witnesses one violation of the monitored correctness property.
type Property struct {
	// Name is a short slug used in reports and the DSL.
	Name string
	// Description restates the correctness property in prose (the positive
	// statement whose violation the stages witness).
	Description string
	// Tenant names the owner for per-tenant quota accounting; empty
	// means the default (unquotaed) tenant. Not part of the DSL grammar —
	// operators attach it at install time (admin endpoint, wire update).
	Tenant string
	Stages []Stage
}

// String renders a compact description.
func (p *Property) String() string {
	return fmt.Sprintf("property %s (%d observations)", p.Name, len(p.Stages))
}

// Vars returns the variables bound anywhere in the property, in binding
// order without duplicates.
func (p *Property) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, s := range p.Stages {
		for _, b := range s.Binds {
			if !seen[b.Var] {
				seen[b.Var] = true
				out = append(out, b.Var)
			}
		}
	}
	return out
}
