package property

import (
	"time"

	"switchmon/internal/packet"
)

// Predicate construction helpers. These keep catalogue definitions close
// to the paper's notation.

// Eq constrains field == numeric literal.
func Eq(f packet.Field, v uint64) Pred { return Pred{Field: f, Op: OpEq, Arg: LitNum(v)} }

// EqStr constrains field == string literal.
func EqStr(f packet.Field, s string) Pred { return Pred{Field: f, Op: OpEq, Arg: LitStr(s)} }

// EqVar constrains field == bound variable.
func EqVar(f packet.Field, v Var) Pred { return Pred{Field: f, Op: OpEq, Arg: Ref(v)} }

// Ne constrains field != numeric literal.
func Ne(f packet.Field, v uint64) Pred { return Pred{Field: f, Op: OpNe, Arg: LitNum(v)} }

// NeVar constrains field != bound variable (negative match, Feature 6).
func NeVar(f packet.Field, v Var) Pred { return Pred{Field: f, Op: OpNe, Arg: Ref(v)} }

// Builder assembles a Property stage by stage. Create one with New, add
// observations, and call Build (which validates).
type Builder struct {
	p      Property
	stages []*StageBuilder
}

// New starts a property definition.
func New(name, description string) *Builder {
	return &Builder{p: Property{Name: name, Description: description}}
}

// StageBuilder configures one observation; its methods return the receiver
// for chaining.
type StageBuilder struct {
	s Stage
}

func (b *Builder) add(label string, class EventClass) *StageBuilder {
	sb := &StageBuilder{s: NewStage(label, class)}
	b.stages = append(b.stages, sb)
	return sb
}

// OnArrival adds a positive observation of a packet arrival.
func (b *Builder) OnArrival(label string) *StageBuilder { return b.add(label, Arrival) }

// OnEgress adds a positive observation of a forwarding decision.
func (b *Builder) OnEgress(label string) *StageBuilder { return b.add(label, Egress) }

// OnPacket adds a positive observation matching arrivals or departures.
func (b *Builder) OnPacket(label string) *StageBuilder { return b.add(label, AnyPacket) }

// OnOutOfBand adds a positive observation of a non-packet event.
func (b *Builder) OnOutOfBand(label string) *StageBuilder { return b.add(label, OutOfBand) }

// UnlessWithin adds a negative observation (Feature 7): the stage is
// satisfied when window elapses with no event of the given class matching
// the predicates.
func (b *Builder) UnlessWithin(label string, class EventClass, window time.Duration) *StageBuilder {
	sb := b.add(label, class)
	sb.s.Negative = true
	sb.s.Window = window
	return sb
}

// Build validates and returns the property.
func (b *Builder) Build() (*Property, error) {
	p := b.p
	p.Stages = make([]Stage, len(b.stages))
	for i, sb := range b.stages {
		p.Stages[i] = sb.s
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustBuild is Build for the static catalogue; it panics on a malformed
// property.
func (b *Builder) MustBuild() *Property {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Where adds predicates to the stage.
func (sb *StageBuilder) Where(preds ...Pred) *StageBuilder {
	sb.s.Preds = append(sb.s.Preds, preds...)
	return sb
}

// Bind captures a field into a variable.
func (sb *StageBuilder) Bind(v Var, f packet.Field) *StageBuilder {
	sb.s.Binds = append(sb.s.Binds, Binding{Var: v, Field: f})
	return sb
}

// MatchAny adds disjunctive predicate groups: the stage requires Where
// predicates plus at least one full group.
func (sb *StageBuilder) MatchAny(groups ...PredGroup) *StageBuilder {
	sb.s.AnyOf = append(sb.s.AnyOf, groups...)
	return sb
}

// Within bounds the time since the previous stage (Feature 3).
func (sb *StageBuilder) Within(d time.Duration) *StageBuilder {
	sb.s.Window = d
	return sb
}

// WithinVar bounds the time since the previous stage by a bound variable
// holding seconds (e.g. a DHCP lease duration).
func (sb *StageBuilder) WithinVar(v Var) *StageBuilder {
	sb.s.WindowVar = v
	return sb
}

// SamePacket requires the stage's event to concern the same packet as the
// event of the given earlier stage (Feature 5).
func (sb *StageBuilder) SamePacket(stage int) *StageBuilder {
	sb.s.SamePacketAs = stage
	return sb
}

// Count makes this a counting stage: it advances after n matching events.
func (sb *StageBuilder) Count(n int) *StageBuilder {
	sb.s.MinCount = n
	return sb
}

// CountDistinct makes this a counting stage over distinct values of f: it
// advances after n matching events each carrying a previously unseen
// value of f.
func (sb *StageBuilder) CountDistinct(n int, f packet.Field) *StageBuilder {
	sb.s.MinCount = n
	sb.s.CountDistinct = f
	return sb
}

// Until adds an obligation guard (Feature 4): a matching event discharges
// the instance while it waits at this stage.
func (sb *StageBuilder) Until(class EventClass, preds ...Pred) *StageBuilder {
	sb.s.Until = append(sb.s.Until, Guard{Class: class, Preds: preds})
	return sb
}

// UntilSticky adds a permanent-discharge guard: a matching event
// suppresses the instance identity forever, including retroactively.
func (sb *StageBuilder) UntilSticky(class EventClass, preds ...Pred) *StageBuilder {
	sb.s.Until = append(sb.s.Until, Guard{Class: class, Preds: preds, Sticky: true})
	return sb
}
