package property

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrNoStages = errors.New("property: no observation stages")
)

// Validate checks the structural well-formedness of a property:
// variables are bound before use, negative stages carry the mandatory
// window and bind nothing (there is no event to bind from), packet-identity
// references point at earlier packet stages, and fields are registered.
func (p *Property) Validate() error {
	if p.Name == "" {
		return errors.New("property: empty name")
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("%w in %s", ErrNoStages, p.Name)
	}
	bound := map[Var]bool{}
	for i, s := range p.Stages {
		where := fmt.Sprintf("property %s stage %d (%s)", p.Name, i, s.Label)
		if err := validatePreds(s.Preds, bound, where); err != nil {
			return err
		}
		for gi, g := range s.AnyOf {
			if len(g) == 0 {
				return fmt.Errorf("%s: empty any-of group %d", where, gi)
			}
			if err := validatePreds(g, bound, fmt.Sprintf("%s any-of group %d", where, gi)); err != nil {
				return err
			}
		}
		for _, g := range s.Until {
			if err := validatePreds(g.Preds, bound, where+" until-guard"); err != nil {
				return err
			}
			if g.Sticky {
				if err := validateStickyGuard(p, i, g, bound, where); err != nil {
					return err
				}
			}
		}
		if s.Window < 0 {
			return fmt.Errorf("%s: negative window", where)
		}
		if s.WindowVar != "" {
			if s.Window != 0 {
				return fmt.Errorf("%s: both Window and WindowVar set", where)
			}
			if !bound[s.WindowVar] {
				return fmt.Errorf("%s: window variable $%s used before binding", where, s.WindowVar)
			}
		}
		if s.Negative {
			if s.Window <= 0 && s.WindowVar == "" {
				return fmt.Errorf("%s: negative observation without a window", where)
			}
			if len(s.Binds) > 0 {
				return fmt.Errorf("%s: negative observation cannot bind variables", where)
			}
			if i == 0 {
				return fmt.Errorf("%s: property cannot begin with a negative observation", where)
			}
		}
		if s.MinCount < 0 {
			return fmt.Errorf("%s: negative MinCount", where)
		}
		if s.MinCount > 1 && s.Negative {
			return fmt.Errorf("%s: negative observation cannot count", where)
		}
		if s.CountDistinct != 0 {
			if s.MinCount <= 1 {
				return fmt.Errorf("%s: CountDistinct requires MinCount > 1", where)
			}
			if !s.CountDistinct.Valid() {
				return fmt.Errorf("%s: CountDistinct on unregistered field %d", where, s.CountDistinct)
			}
		}
		if s.MinCount > 1 && len(s.Binds) > 0 {
			return fmt.Errorf("%s: counting stage cannot bind variables (which event would they come from?)", where)
		}
		if s.SamePacketAs >= 0 {
			if s.SamePacketAs >= i {
				return fmt.Errorf("%s: same-packet reference to stage %d is not earlier", where, s.SamePacketAs)
			}
			ref := p.Stages[s.SamePacketAs]
			if ref.Class == OutOfBand || ref.Negative {
				return fmt.Errorf("%s: same-packet reference to a non-packet stage", where)
			}
			if s.Class == OutOfBand {
				return fmt.Errorf("%s: same-packet constraint on an out-of-band stage", where)
			}
		}
		for _, b := range s.Binds {
			if !b.Field.Valid() {
				return fmt.Errorf("%s: binding from unregistered field %d", where, b.Field)
			}
			if b.Var == "" {
				return fmt.Errorf("%s: binding to empty variable name", where)
			}
			bound[b.Var] = true
		}
	}
	return nil
}

// validateStickyGuard enforces the synthesizability requirements of
// sticky (permanent) guards: every variable bound so far must be pinned
// by an equality predicate of the guard, and no earlier stage may use
// packet identity (which cannot be synthesized from the guard's event).
func validateStickyGuard(p *Property, stageIdx int, g Guard, bound map[Var]bool, where string) error {
	pinned := map[Var]bool{}
	for _, pr := range g.Preds {
		if pr.Op == OpEq && pr.Arg.IsVar() {
			pinned[pr.Arg.Var] = true
		}
	}
	for v := range bound {
		if !pinned[v] {
			return fmt.Errorf("%s: sticky guard does not pin variable $%s", where, v)
		}
	}
	for i := 0; i < stageIdx; i++ {
		for j := range p.Stages {
			if p.Stages[j].SamePacketAs == i {
				return fmt.Errorf("%s: sticky guard with packet identity on stage %d", where, i)
			}
		}
	}
	return nil
}

func validatePreds(preds []Pred, bound map[Var]bool, where string) error {
	for _, pr := range preds {
		if !pr.Field.Valid() {
			return fmt.Errorf("%s: predicate on unregistered field %d", where, pr.Field)
		}
		switch pr.Arg.Kind {
		case OperandVar:
			if !bound[pr.Arg.Var] {
				return fmt.Errorf("%s: variable $%s used before binding", where, pr.Arg.Var)
			}
		case OperandHash:
			h := pr.Arg.Hash
			if h == nil || len(h.Fields) == 0 {
				return fmt.Errorf("%s: hash operand without fields", where)
			}
			if h.Mod == 0 {
				return fmt.Errorf("%s: hash operand with zero modulus", where)
			}
			for _, f := range h.Fields {
				if !f.Valid() {
					return fmt.Errorf("%s: hash over unregistered field %d", where, f)
				}
			}
		}
	}
	return nil
}

// MustValidate panics if the property is malformed; used for the built-in
// catalogue, whose well-formedness is a program invariant.
func (p *Property) MustValidate() *Property {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
