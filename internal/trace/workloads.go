package trace

import (
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

// Workload generators. Each returns a deterministic event stream (fixed
// seed ⇒ identical bytes) shaped like the scenario its experiment needs.

var (
	wlMACInternal = packet.MustMAC("02:00:00:00:01:01")
	wlMACExternal = packet.MustMAC("02:00:00:00:01:02")
)

// FirewallWorkload drives the stateful-firewall scenario: Flows distinct
// internal->external pairs open, exchange return traffic, and every
// ViolationEvery-th return packet is wrongfully dropped.
type FirewallWorkload struct {
	// Flows is the number of concurrent A,B pairs (= live monitor
	// instances).
	Flows int
	// ReturnsPerFlow is how many return packets each flow sees.
	ReturnsPerFlow int
	// ViolationEvery drops every Nth return packet (0 = none).
	ViolationEvery int
	// CloseEvery sends a FIN on every Nth flow after its returns
	// (0 = none), exercising obligation discharges.
	CloseEvery int
	// Gap is the virtual inter-event spacing.
	Gap time.Duration
}

// Events renders the workload as an event stream starting at start.
func (w FirewallWorkload) Events(start time.Time) []core.Event {
	if w.ReturnsPerFlow == 0 {
		w.ReturnsPerFlow = 1
	}
	var events []core.Event
	now := start
	pid := core.PacketID(0)
	step := func() time.Time {
		now = now.Add(w.Gap)
		return now
	}
	returns := 0
	// Open all flows first so the instance population is at its peak
	// while return traffic flows (the E3 shape).
	for f := 0; f < w.Flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f%200))
		out := packet.NewTCP(wlMACInternal, wlMACExternal, src, dst, uint16(10000+f%50000), 80, packet.FlagSYN, nil)
		pid++
		events = append(events,
			core.Event{Kind: core.KindArrival, Time: step(), PacketID: pid, Packet: out, InPort: 1},
			core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: out, InPort: 1, OutPort: 2},
		)
	}
	for r := 0; r < w.ReturnsPerFlow; r++ {
		for f := 0; f < w.Flows; f++ {
			src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
			dst := packet.IPv4FromUint32(0xcb007100 | uint32(f%200))
			ret := packet.NewTCP(wlMACExternal, wlMACInternal, dst, src, 80, uint16(10000+f%50000), packet.FlagACK, nil)
			pid++
			returns++
			ev := core.Event{Kind: core.KindArrival, Time: step(), PacketID: pid, Packet: ret, InPort: 2}
			events = append(events, ev)
			eg := core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: ret, InPort: 2, OutPort: 1}
			if w.ViolationEvery > 0 && returns%w.ViolationEvery == 0 {
				eg.OutPort = 0
				eg.Dropped = true
			}
			events = append(events, eg)
		}
	}
	if w.CloseEvery > 0 {
		for f := 0; f < w.Flows; f += w.CloseEvery {
			src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
			dst := packet.IPv4FromUint32(0xcb007100 | uint32(f%200))
			fin := packet.NewTCP(wlMACInternal, wlMACExternal, src, dst, uint16(10000+f%50000), 80, packet.FlagFIN|packet.FlagACK, nil)
			pid++
			events = append(events,
				core.Event{Kind: core.KindArrival, Time: step(), PacketID: pid, Packet: fin, InPort: 1},
				core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: fin, InPort: 1, OutPort: 2},
			)
		}
	}
	return events
}

// HighFlowWorkload is the E8 sharding stressor: a large population of
// distinct flow identities with return traffic interleaved round-robin
// across all of them, so consecutive events land on different instances
// (and, under the sharded engine, on different shards). Unlike
// FirewallWorkload it keeps destination addresses distinct per flow, so
// identity hashes spread uniformly, and it emits returns as bare egress
// events to concentrate the stream on the stage-1 match path.
type HighFlowWorkload struct {
	// Flows is the number of distinct (src, dst) identities.
	Flows int
	// Rounds is how many return packets each flow sees.
	Rounds int
	// ViolationEvery drops every Nth return (0 = none).
	ViolationEvery int
	// Gap is the virtual inter-event spacing.
	Gap time.Duration
}

// Events renders the workload as an event stream starting at start.
func (w HighFlowWorkload) Events(start time.Time) []core.Event {
	if w.Rounds == 0 {
		w.Rounds = 1
	}
	events := make([]core.Event, 0, w.Flows*(2+w.Rounds))
	now := start
	pid := core.PacketID(0)
	step := func() time.Time {
		now = now.Add(w.Gap)
		return now
	}
	for f := 0; f < w.Flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(f))
		dst := packet.IPv4FromUint32(0xcb000000 + uint32(f))
		out := packet.NewTCP(wlMACInternal, wlMACExternal, src, dst, uint16(10000+f%50000), 443, packet.FlagSYN, nil)
		pid++
		events = append(events,
			core.Event{Kind: core.KindArrival, Time: step(), PacketID: pid, Packet: out, InPort: 1},
			core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: out, InPort: 1, OutPort: 2},
		)
	}
	returns := 0
	for r := 0; r < w.Rounds; r++ {
		for f := 0; f < w.Flows; f++ {
			src := packet.IPv4FromUint32(0x0a000000 + uint32(f))
			dst := packet.IPv4FromUint32(0xcb000000 + uint32(f))
			ret := packet.NewTCP(wlMACExternal, wlMACInternal, dst, src, 443, uint16(10000+f%50000), packet.FlagACK, nil)
			pid++
			returns++
			eg := core.Event{Kind: core.KindEgress, Time: step(), PacketID: pid, Packet: ret, InPort: 2, OutPort: 1}
			if w.ViolationEvery > 0 && returns%w.ViolationEvery == 0 {
				eg.OutPort = 0
				eg.Dropped = true
			}
			events = append(events, eg)
		}
	}
	return events
}

// NATWorkload drives the NAT reverse-translation scenario for the E5
// side-effect experiment: Flows translations with occasional
// mistranslations.
type NATWorkload struct {
	Flows             int
	MistranslateEvery int
	Gap               time.Duration
}

// Events renders the workload.
func (w NATWorkload) Events(start time.Time) []core.Event {
	natIP := packet.MustIPv4("198.51.100.1")
	var events []core.Event
	now := start
	pid := core.PacketID(0)
	step := func() time.Time {
		now = now.Add(w.Gap)
		return now
	}
	for f := 0; f < w.Flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f%200))
		sport := uint16(20000 + f%40000)
		extPort := uint16(60000 + f%5000)
		out := packet.NewTCP(wlMACInternal, wlMACExternal, src, dst, sport, 80, packet.FlagSYN, nil)
		outX := out.Clone()
		outX.IPv4.Src = natIP
		outX.TCP.SrcPort = extPort
		pid++
		events = append(events,
			core.Event{Kind: core.KindArrival, Time: step(), PacketID: pid, Packet: out, InPort: 1},
			core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: outX, InPort: 1, OutPort: 2},
		)
		ret := packet.NewTCP(wlMACExternal, wlMACInternal, dst, natIP, 80, extPort, packet.FlagACK, nil)
		retX := ret.Clone()
		retX.IPv4.Dst = src
		retX.TCP.DstPort = sport
		if w.MistranslateEvery > 0 && (f+1)%w.MistranslateEvery == 0 {
			retX.TCP.DstPort = sport + 1
		}
		pid++
		events = append(events,
			core.Event{Kind: core.KindArrival, Time: step(), PacketID: pid, Packet: ret, InPort: 2},
			core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: retX, InPort: 2, OutPort: 1},
		)
	}
	return events
}

// LearningWorkload drives the learning-switch scenario for E7 (redirect
// volume): Hosts hosts exchanging PacketsPerHost packets each, with
// payload bytes to make volume measurable.
type LearningWorkload struct {
	Hosts          int
	PacketsPerHost int
	PayloadBytes   int
	Gap            time.Duration
}

// Events renders the workload.
func (w LearningWorkload) Events(start time.Time) []core.Event {
	payload := make([]byte, w.PayloadBytes)
	var events []core.Event
	now := start
	pid := core.PacketID(0)
	rng := sim.NewRand(7)
	macOf := func(i int) packet.MAC {
		return packet.MACFromUint64(0x020000000000 | uint64(i+1))
	}
	ipOf := func(i int) packet.IPv4 {
		return packet.IPv4FromUint32(0x0a010000 | uint32(i))
	}
	for r := 0; r < w.PacketsPerHost; r++ {
		for h := 0; h < w.Hosts; h++ {
			dst := (h + 1 + rng.Intn(w.Hosts-1)) % w.Hosts
			p := packet.NewTCP(macOf(h), macOf(dst), ipOf(h), ipOf(dst), uint16(1000+h), uint16(1000+dst), packet.FlagACK, payload)
			pid++
			now = now.Add(w.Gap)
			events = append(events,
				core.Event{Kind: core.KindArrival, Time: now, PacketID: pid, Packet: p, InPort: uint64(h%8 + 1)},
				core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: p, InPort: uint64(h%8 + 1), OutPort: uint64(dst%8 + 1)},
			)
		}
	}
	return events
}
