// Package trace provides (a) a line-oriented record/replay format for
// monitor event streams and (b) deterministic workload generators for the
// benchmark experiments — the stand-in for the production traffic the
// paper's authors observed (repro substitution documented in DESIGN.md).
package trace

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

// WriteEvent encodes one event as a single line:
//
//	A <unix-nanos> <switch-id> <pid> <in-port> <frame-hex>
//	E <unix-nanos> <switch-id> <pid> <in-port> <out-port|DROP> <multi 0|1> <frame-hex>
//	O <unix-nanos> <switch-id> <oob-kind> <port>
func WriteEvent(w io.Writer, e *core.Event) error {
	switch e.Kind {
	case core.KindArrival:
		data, err := e.Packet.Encode()
		if err != nil {
			return fmt.Errorf("trace: encode arrival: %w", err)
		}
		_, err = fmt.Fprintf(w, "A %d %d %d %d %s\n",
			e.Time.UnixNano(), e.SwitchID, e.PacketID, e.InPort, hex.EncodeToString(data))
		return err
	case core.KindEgress:
		data, err := e.Packet.Encode()
		if err != nil {
			return fmt.Errorf("trace: encode egress: %w", err)
		}
		out := strconv.FormatUint(e.OutPort, 10)
		if e.Dropped {
			out = "DROP"
		}
		multi := 0
		if e.Multicast {
			multi = 1
		}
		_, err = fmt.Fprintf(w, "E %d %d %d %d %s %d %s\n",
			e.Time.UnixNano(), e.SwitchID, e.PacketID, e.InPort, out, multi, hex.EncodeToString(data))
		return err
	case core.KindOutOfBand:
		_, err := fmt.Fprintf(w, "O %d %d %d %d\n", e.Time.UnixNano(), e.SwitchID, e.OOBKind, e.OOBPort)
		return err
	default:
		return fmt.Errorf("trace: unknown event kind %v", e.Kind)
	}
}

// WriteAll encodes a stream of events.
func WriteAll(w io.Writer, events []core.Event) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		if err := WriteEvent(bw, &events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll decodes a trace. Blank lines and '#' comments are skipped.
func ReadAll(r io.Reader) ([]core.Event, error) {
	var events []core.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

func parseLine(line string) (core.Event, error) {
	fields := strings.Fields(line)
	var e core.Event
	if len(fields) == 0 {
		return e, fmt.Errorf("empty record")
	}
	parseTime := func(s string) (time.Time, error) {
		ns, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad timestamp %q", s)
		}
		return time.Unix(0, ns).UTC(), nil
	}
	switch fields[0] {
	case "A":
		if len(fields) != 6 {
			return e, fmt.Errorf("arrival record needs 6 fields, has %d", len(fields))
		}
		t, err := parseTime(fields[1])
		if err != nil {
			return e, err
		}
		swid, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad switch id %q", fields[2])
		}
		pid, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad packet id %q", fields[3])
		}
		in, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad port %q", fields[4])
		}
		p, err := decodeFrame(fields[5])
		if err != nil {
			return e, err
		}
		return core.Event{Kind: core.KindArrival, Time: t, SwitchID: swid, PacketID: core.PacketID(pid), InPort: in, Packet: p}, nil
	case "E":
		if len(fields) != 8 {
			return e, fmt.Errorf("egress record needs 8 fields, has %d", len(fields))
		}
		t, err := parseTime(fields[1])
		if err != nil {
			return e, err
		}
		swid, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad switch id %q", fields[2])
		}
		pid, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad packet id %q", fields[3])
		}
		in, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad port %q", fields[4])
		}
		ev := core.Event{Kind: core.KindEgress, Time: t, SwitchID: swid, PacketID: core.PacketID(pid), InPort: in}
		if fields[5] == "DROP" {
			ev.Dropped = true
		} else {
			out, err := strconv.ParseUint(fields[5], 10, 64)
			if err != nil {
				return e, fmt.Errorf("bad out port %q", fields[5])
			}
			ev.OutPort = out
		}
		ev.Multicast = fields[6] == "1"
		p, err := decodeFrame(fields[7])
		if err != nil {
			return e, err
		}
		ev.Packet = p
		return ev, nil
	case "O":
		if len(fields) != 5 {
			return e, fmt.Errorf("oob record needs 5 fields, has %d", len(fields))
		}
		t, err := parseTime(fields[1])
		if err != nil {
			return e, err
		}
		swid, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad switch id %q", fields[2])
		}
		kind, err := strconv.ParseUint(fields[3], 10, 8)
		if err != nil {
			return e, fmt.Errorf("bad oob kind %q", fields[3])
		}
		port, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad oob port %q", fields[4])
		}
		return core.Event{Kind: core.KindOutOfBand, Time: t, SwitchID: swid, OOBKind: packet.OOBKind(kind), OOBPort: port}, nil
	default:
		return e, fmt.Errorf("unknown record type %q", fields[0])
	}
}

func decodeFrame(h string) (*packet.Packet, error) {
	data, err := hex.DecodeString(h)
	if err != nil {
		return nil, fmt.Errorf("bad frame hex: %v", err)
	}
	p, err := packet.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("bad frame: %v", err)
	}
	return p, nil
}

// Recorder subscribes to a switch's event stream and collects it.
type Recorder struct {
	Events []core.Event
}

// Observe is the subscription callback.
func (r *Recorder) Observe(e core.Event) { r.Events = append(r.Events, e) }

// Replay feeds a recorded stream into a handler, advancing the scheduler
// to each event's timestamp so timeout semantics replay faithfully.
func Replay(sched *sim.Scheduler, events []core.Event, handle func(core.Event)) {
	for _, e := range events {
		if e.Time.After(sched.Now()) {
			sched.RunUntil(e.Time)
		}
		handle(e)
	}
}
