package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

func sampleEvents(t *testing.T) []core.Event {
	t.Helper()
	p := packet.NewTCP(wlMACInternal, wlMACExternal,
		packet.MustIPv4("10.0.0.1"), packet.MustIPv4("203.0.113.9"), 1000, 80, packet.FlagSYN, []byte("hi"))
	arp := packet.NewARPRequest(wlMACInternal, packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"))
	at := sim.Epoch
	return []core.Event{
		{Kind: core.KindArrival, Time: at, SwitchID: 2, PacketID: 1, Packet: p, InPort: 1},
		{Kind: core.KindEgress, Time: at.Add(time.Millisecond), PacketID: 1, Packet: p, InPort: 1, OutPort: 2},
		{Kind: core.KindEgress, Time: at.Add(2 * time.Millisecond), PacketID: 2, Packet: arp, InPort: 3, Dropped: true},
		{Kind: core.KindEgress, Time: at.Add(3 * time.Millisecond), PacketID: 3, Packet: arp, InPort: 3, OutPort: 4, Multicast: true},
		{Kind: core.KindOutOfBand, Time: at.Add(4 * time.Millisecond), OOBKind: packet.OOBLinkDown, OOBPort: 7},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := sampleEvents(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(events))
	}
	for i := range events {
		a, b := events[i], back[i]
		if a.Kind != b.Kind || !a.Time.Equal(b.Time) || a.SwitchID != b.SwitchID || a.PacketID != b.PacketID ||
			a.InPort != b.InPort || a.OutPort != b.OutPort || a.Dropped != b.Dropped ||
			a.Multicast != b.Multicast || a.OOBKind != b.OOBKind || a.OOBPort != b.OOBPort {
			t.Errorf("event %d header mismatch:\n  %+v\n  %+v", i, a, b)
		}
		if a.Packet != nil && !reflect.DeepEqual(normalize(a.Packet), b.Packet) {
			t.Errorf("event %d packet mismatch", i)
		}
	}
}

// normalize re-decodes a packet through its wire form, since the trace
// stores wire bytes (nil payloads become empty, etc.).
func normalize(p *packet.Packet) *packet.Packet {
	data, err := p.Encode()
	if err != nil {
		panic(err)
	}
	q, err := packet.Decode(data)
	if err != nil {
		panic(err)
	}
	return q
}

func TestReadAllSkipsCommentsAndBlank(t *testing.T) {
	src := "# comment\n\nO 0 3 1 5\n"
	events, err := ReadAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].OOBPort != 5 || events[0].SwitchID != 3 {
		t.Fatalf("events = %+v", events)
	}
}

func TestReadAllErrors(t *testing.T) {
	cases := []string{
		"X 0 0 0",
		"A 0 0 1 1",                   // too few fields
		"A x 0 1 1 00",                // bad time
		"A 0 0 1 1 zz",                // bad hex
		"A 0 0 1 1 0011",              // undecodable frame
		"A 0 nope 1 1 00",             // bad switch id
		"E 0 0 1 1 nope 0 00",         // bad out port
		"O 0 0 bad 1",                 // bad kind
		"E 0 0 1 1 2 0 00 extrastuff", // too many fields
	}
	for _, src := range cases {
		if _, err := ReadAll(strings.NewReader(src)); err == nil {
			t.Errorf("ReadAll(%q) succeeded", src)
		}
	}
}

func TestRecorderAndReplay(t *testing.T) {
	events := sampleEvents(t)
	rec := &Recorder{}
	for _, e := range events {
		rec.Observe(e)
	}
	if len(rec.Events) != len(events) {
		t.Fatalf("recorder has %d events", len(rec.Events))
	}
	sched := sim.NewScheduler()
	var seen int
	var lastTime time.Time
	Replay(sched, rec.Events, func(e core.Event) {
		seen++
		lastTime = sched.Now()
	})
	if seen != len(events) {
		t.Fatalf("replayed %d events", seen)
	}
	if !lastTime.Equal(events[len(events)-1].Time) {
		t.Fatalf("replay clock = %v, want %v", lastTime, events[len(events)-1].Time)
	}
}

func TestFirewallWorkloadShape(t *testing.T) {
	w := FirewallWorkload{Flows: 10, ReturnsPerFlow: 3, ViolationEvery: 5, Gap: time.Millisecond}
	events := w.Events(sim.Epoch)
	// 10 opens (2 events each) + 30 returns (2 events each).
	if len(events) != 20+60 {
		t.Fatalf("events = %d, want 80", len(events))
	}
	drops := 0
	for _, e := range events {
		if e.Kind == core.KindEgress && e.Dropped {
			drops++
		}
	}
	if drops != 6 {
		t.Fatalf("drops = %d, want 6 (30 returns / every 5)", drops)
	}
	// Determinism.
	again := w.Events(sim.Epoch)
	if len(again) != len(events) {
		t.Fatal("workload not deterministic")
	}
}

func TestFirewallWorkloadDrivesMonitor(t *testing.T) {
	sched := sim.NewScheduler()
	var viols int
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	w := FirewallWorkload{Flows: 20, ReturnsPerFlow: 2, ViolationEvery: 4, Gap: time.Millisecond}
	events := w.Events(sim.Epoch)
	Replay(sched, events, mon.HandleEvent)
	// 40 returns, every 4th dropped = 10 wrongful drops. Each drop
	// consumes its pair's instance; the pair re-arms only on the next
	// outgoing packet, which this workload doesn't send — but distinct
	// flows are distinct instances, so every dropped return on a distinct
	// flow alerts.
	if viols == 0 {
		t.Fatal("workload produced no violations")
	}
	if viols > 10 {
		t.Fatalf("viols = %d, want <= 10", viols)
	}
}

func TestNATWorkloadDrivesMonitor(t *testing.T) {
	sched := sim.NewScheduler()
	var viols int
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "nat-reverse")); err != nil {
		t.Fatal(err)
	}
	w := NATWorkload{Flows: 30, MistranslateEvery: 10, Gap: time.Millisecond}
	Replay(sched, w.Events(sim.Epoch), mon.HandleEvent)
	if viols != 3 {
		t.Fatalf("viols = %d, want 3 (30 flows / every 10)", viols)
	}
}

func TestLearningWorkloadVolume(t *testing.T) {
	w := LearningWorkload{Hosts: 8, PacketsPerHost: 5, PayloadBytes: 100, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	if len(events) != 8*5*2 {
		t.Fatalf("events = %d, want 80", len(events))
	}
	for _, e := range events {
		if e.Kind == core.KindArrival && len(e.Packet.TCP.Payload) != 100 {
			t.Fatal("payload size not honored")
		}
	}
	// Deterministic across calls despite internal rand: fixed seed.
	a, b := w.Events(sim.Epoch), w.Events(sim.Epoch)
	for i := range a {
		if a[i].Packet.Eth.Dst != b[i].Packet.Eth.Dst {
			t.Fatal("learning workload not deterministic")
		}
	}
}
