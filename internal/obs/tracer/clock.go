package tracer

import (
	"sync"

	"switchmon/internal/obs"
)

// ClockEstimator tracks the offset between a peer's clock and the
// local clock from round-trip timestamp samples, NTP style: each
// sample is (local send time T1, peer time T — the midpoint of the
// peer's receive and reply stamps, local receive time T4), giving
//
//	offset ≈ T − (T1+T4)/2        (peer clock − local clock)
//	dispersion ≈ (T4−T1)/2        (half the RTT bounds the error)
//
// Samples come from the fabric's existing control traffic — the
// Hello/HelloAck handshake and timestamped cumulative Acks — so the
// estimate costs no extra frames. Offset and dispersion are smoothed
// with the TCP-RTT EWMA gain (1/8) and exported as gauges.
//
// The estimator's consumer is span alignment: a collector shifts the
// switch-stamped marks of an incoming span by the (negated) offset
// before comparing them with its own stamps.
type ClockEstimator struct {
	mu      sync.Mutex
	init    bool
	offset  float64
	disp    float64
	samples uint64

	offsetG *obs.Gauge
	dispG   *obs.Gauge
}

// NewClockEstimator builds an estimator publishing to the given
// gauges (either may be nil).
func NewClockEstimator(offsetG, dispG *obs.Gauge) *ClockEstimator {
	return &ClockEstimator{offsetG: offsetG, dispG: dispG}
}

// AddSample folds in one round trip: localSend and localRecv bracket
// the exchange on the local clock, peer is the peer's clock reading
// mid-exchange. Samples with a negative apparent RTT are discarded.
// Nil-receiver safe.
func (c *ClockEstimator) AddSample(localSendNs, peerNs, localRecvNs int64) {
	if c == nil || peerNs == 0 {
		return
	}
	rtt := localRecvNs - localSendNs
	if rtt < 0 {
		return
	}
	off := float64(peerNs) - (float64(localSendNs) + float64(rtt)/2)
	dsp := float64(rtt) / 2
	c.mu.Lock()
	if !c.init {
		c.init = true
		c.offset = off
		c.disp = dsp
	} else {
		const alpha = 1.0 / 8
		c.offset += alpha * (off - c.offset)
		c.disp += alpha * (dsp - c.disp)
	}
	c.samples++
	offI, dspI := int64(c.offset), int64(c.disp)
	c.mu.Unlock()
	c.offsetG.Set(offI)
	c.dispG.Set(dspI)
}

// Estimate returns the current (peer − local) offset and dispersion
// in ns; ok is false before the first sample. Nil-receiver safe.
func (c *ClockEstimator) Estimate() (offsetNs, dispNs int64, ok bool) {
	if c == nil {
		return 0, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.init {
		return 0, 0, false
	}
	return int64(c.offset), int64(c.disp), true
}

// Samples counts accepted samples. Nil-receiver safe.
func (c *ClockEstimator) Samples() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.samples
}
