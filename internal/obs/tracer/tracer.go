// Package tracer records stage-stamped spans for sampled events as
// they traverse the monitoring fabric: dataplane ingress, exporter
// enqueue and batch seal, the wire send, collector receipt, shard
// dispatch, and finally the monitor's verdict. The paper's provenance
// feature (F10) explains *why* the monitor flagged a violation; spans
// explain *when* — per-stage detection latency becomes a first-class
// measurement instead of something inferred from two distant
// histograms.
//
// The design constraints mirror the rest of the telemetry stack
// (internal/obs):
//
//   - Sampling is deterministic: an event is traced iff a strong mix of
//     its identity hash (datapath id, packet id, event kind) lands in
//     the configured 1-in-N class. Every host that derives the key the
//     same way makes the same decision, so a span started on a switch
//     is continued — never re-decided — downstream.
//   - The unsampled path is allocation-free and nearly branch-free:
//     Sample is one hash and one compare, and every Span method is
//     nil-receiver safe, so instrumentation sites stamp uncondition-
//     ally and pay only a pointer test when the event is not traced.
//   - Stage marks are write-once (atomic compare-and-swap from zero),
//     which is what makes replay idempotent: a batch re-sent after a
//     reconnect re-stamps nothing, so wire spans stay exact without
//     any replay-awareness at the instrumentation sites.
//
// Completed spans land in a bounded ring served as NDJSON from the
// /trace introspection endpoint, and their stage-to-stage deltas feed
// per-stage and end-to-end detection-latency histograms in the obs
// registry.
package tracer

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"switchmon/internal/obs"
)

// Stage identifies one instrumentation point along an event's path.
// The order is the event's causal order on a lossless path; spans may
// skip stages (an inline engine has no wire stages, a collector-
// originated span has no switch stages).
type Stage uint8

// Stages, in pipeline order.
const (
	// StageIngress is the dataplane emitting the event.
	StageIngress Stage = iota
	// StageEnqueue is the exporter accepting the event (Publish).
	StageEnqueue
	// StageBatchSeal is the event's batch closing (size or age).
	StageBatchSeal
	// StageWireSend is the batch's frame being written to the socket.
	StageWireSend
	// StageCollectorRecv is the collector decoding the batch.
	StageCollectorRecv
	// StageShardDispatch is the engine dequeuing the event for a shard.
	StageShardDispatch
	// StageVerdict is the engine completing the event's property steps.
	StageVerdict
	// NumStages counts the stages above.
	NumStages
)

var stageNames = [NumStages]string{
	"ingress", "enqueue", "batch_seal", "wire_send",
	"collector_recv", "shard_dispatch", "verdict",
}

// String names the stage as it appears in metric labels and NDJSON.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// SwitchStageMask is the set of stages stamped on the switch host —
// the only stages a wire trace block may carry, and the marks a
// collector must shift by the estimated clock offset before comparing
// them with its own.
const SwitchStageMask uint8 = 1<<StageIngress | 1<<StageEnqueue |
	1<<StageBatchSeal | 1<<StageWireSend

// Span is one sampled event's stage-stamped record. A span is shared
// by pointer between the goroutines that carry its event (exporter
// sender, shard workers), so all mutable state is atomic; spans are
// never copied after creation.
type Span struct {
	// Key is the sampling hash the span was selected on.
	Key uint64
	// DPID, PacketID and Kind identify the event the span traces.
	DPID     uint64
	PacketID uint64
	Kind     uint8

	// remote flags the stages whose marks were taken on another host's
	// clock (set once at wire decode, before the span is shared).
	remote uint8

	marks  [NumStages]atomic.Int64
	offset atomic.Int64 // remote-clock offset estimate (local − remote), ns
	disp   atomic.Int64 // offset dispersion estimate, ns
	refs   atomic.Int32 // outstanding shard deliveries (router-managed)
	done   atomic.Bool  // finished exactly once
}

// Stamp records time.Now for the stage if it has no mark yet. The
// first stamp wins: a replayed batch or a duplicate delivery re-stamps
// nothing. Nil-receiver safe and allocation-free.
func (s *Span) Stamp(st Stage) {
	if s == nil {
		return
	}
	s.marks[st].CompareAndSwap(0, time.Now().UnixNano())
}

// StampAt records an explicit mark (wire decode, tests). Zero marks
// are ignored — zero is the "unstamped" sentinel.
func (s *Span) StampAt(st Stage, ns int64) {
	if s == nil || ns == 0 {
		return
	}
	s.marks[st].CompareAndSwap(0, ns)
}

// Mark returns the stage's mark in ns (0 when unstamped).
func (s *Span) Mark(st Stage) int64 {
	if s == nil {
		return 0
	}
	return s.marks[st].Load()
}

// StageMask reports which stages are stamped, as a bitmask.
func (s *Span) StageMask() uint8 {
	if s == nil {
		return 0
	}
	var m uint8
	for st := Stage(0); st < NumStages; st++ {
		if s.marks[st].Load() != 0 {
			m |= 1 << st
		}
	}
	return m
}

// MarkRemote flags mask's stages as stamped on a remote clock. Called
// once at wire decode before the span is shared across goroutines.
func (s *Span) MarkRemote(mask uint8) {
	if s != nil {
		s.remote = mask
	}
}

// SetClock records the clock-offset estimate for the span's remote
// marks: offset is (local clock − remote clock) in ns, disp the
// estimate's dispersion.
func (s *Span) SetClock(offsetNs, dispNs int64) {
	if s == nil {
		return
	}
	s.offset.Store(offsetNs)
	s.disp.Store(dispNs)
}

// AddRefs registers n pending deliveries (a router fanning the event
// out to n shards). Release undoes one.
func (s *Span) AddRefs(n int32) {
	if s != nil {
		s.refs.Add(n)
	}
}

// Release drops one delivery reference and reports whether it was the
// last — the signal that the span's event has been fully processed
// and the verdict stage can be stamped. A span that never saw AddRefs
// (single-consumer pipeline) releases immediately.
func (s *Span) Release() bool {
	if s == nil {
		return false
	}
	return s.refs.Add(-1) <= 0
}

// adjusted returns the stage's mark shifted into the local clock.
func (s *Span) adjusted(st Stage) int64 {
	m := s.marks[st].Load()
	if m != 0 && s.remote&(1<<st) != 0 {
		m += s.offset.Load()
	}
	return m
}

// SpanRecord is the JSON rendering of a completed span: raw marks,
// the clock estimate applied to remote stages, per-stage durations
// (from the previous stamped stage), and the end-to-end detection
// latency when both endpoints were stamped.
type SpanRecord struct {
	// Seq numbers completed spans in Finish order, starting at 0. The
	// ring evicts oldest-first, so retained seqs are contiguous: a
	// poller reading ?since=s that gets a first record with seq > s+1
	// has detected a gap (spans evicted between polls).
	Seq      uint64           `json:"seq"`
	Key      uint64           `json:"key"`
	DPID     uint64           `json:"dpid"`
	PacketID uint64           `json:"packet_id"`
	Kind     uint8            `json:"kind"`
	OffsetNs int64            `json:"clock_offset_ns,omitempty"`
	DispNs   int64            `json:"clock_dispersion_ns,omitempty"`
	Marks    map[string]int64 `json:"marks"`
	StageNs  map[string]int64 `json:"stage_ns,omitempty"`
	E2ENs    int64            `json:"detection_latency_ns,omitempty"`
}

// Config parameterizes a Tracer.
type Config struct {
	// SampleN traces one event in SampleN (by identity-hash class).
	// 0 disables sampling: Sample always returns nil, though the
	// tracer still finishes spans adopted from the wire.
	SampleN uint64
	// Ring bounds the completed-span ring (default 2048).
	Ring int
	// Metrics receives the tracer's series; nil-safe.
	Metrics *obs.Registry
	// Labels are attached to every series.
	Labels []obs.Label
}

// slot is the ring's completed-span representation: fixed-size, no
// maps, so Finish renders a span without allocating. Snapshot expands
// slots into JSON-friendly SpanRecords lazily, off the hot path. The
// deltas bitmask records which stages carry a stage_ns entry (a delta
// can legitimately clamp to zero, so presence can't be inferred from
// the value).
type slot struct {
	seq                 uint64
	key, dpid, packetID uint64
	kind                uint8
	deltas              uint8
	offsetNs, dispNs    int64
	marks               [NumStages]int64
	stageNs             [NumStages]int64
	e2eNs               int64
}

// record expands a slot into the /trace wire form.
func (sl *slot) record() SpanRecord {
	rec := SpanRecord{
		Seq: sl.seq,
		Key: sl.key, DPID: sl.dpid, PacketID: sl.packetID, Kind: sl.kind,
		OffsetNs: sl.offsetNs, DispNs: sl.dispNs, E2ENs: sl.e2eNs,
		Marks: make(map[string]int64, int(NumStages)),
	}
	for st := Stage(0); st < NumStages; st++ {
		if sl.marks[st] != 0 {
			rec.Marks[st.String()] = sl.marks[st]
		}
		if sl.deltas&(1<<st) != 0 {
			if rec.StageNs == nil {
				rec.StageNs = make(map[string]int64, int(NumStages))
			}
			rec.StageNs[st.String()] = sl.stageNs[st]
		}
	}
	return rec
}

// Tracer samples spans, finishes them into latency histograms, and
// retains completed spans in a bounded ring for /trace. All methods
// are nil-receiver safe.
type Tracer struct {
	n uint64

	mu    sync.Mutex
	recs  []slot
	next  int
	total uint64

	sampledC   *obs.Counter
	completedC *obs.Counter
	stageH     [NumStages]*obs.Histogram
	e2eH       *obs.Histogram
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 2048
	}
	t := &Tracer{n: cfg.SampleN, recs: make([]slot, 0, cfg.Ring)}
	if reg := cfg.Metrics; reg != nil {
		t.sampledC = reg.Counter("switchmon_trace_spans_sampled_total",
			"spans originated by the deterministic sampler", cfg.Labels...)
		t.completedC = reg.Counter("switchmon_trace_spans_completed_total",
			"spans finished into the ring and histograms", cfg.Labels...)
		for st := Stage(0); st < NumStages; st++ {
			lbls := append(append([]obs.Label(nil), cfg.Labels...), obs.L("stage", st.String()))
			t.stageH[st] = reg.Histogram("switchmon_trace_stage_ns",
				"ns from the previous stamped stage to this one", lbls...)
		}
		t.e2eH = reg.Histogram("switchmon_trace_detection_latency_ns",
			"ns from dataplane ingress to monitor verdict", cfg.Labels...)
	}
	return t
}

// SampleN reports the configured 1-in-N rate (0 = sampling off).
func (t *Tracer) SampleN() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Key derives the sampling key for an event's identity. Every host
// computes it the same way, so sampling decisions agree fleet-wide.
// The combine is word-at-a-time — three xor-multiply steps, not a byte
// loop — because this runs on every event, sampled or not, and mix64
// supplies the avalanche the short chain lacks.
func Key(dpid, packetID uint64, kind uint8) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := (offset ^ dpid) * prime
	h = (h ^ packetID) * prime
	return (h ^ uint64(kind)) * prime
}

// mix64 is the murmur3 fmix64 finalizer: a bijection whose bits all
// depend on every input bit, so the sampling bucket is uniform even
// for highly structured keys (sequential packet ids).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// inClass reports whether a mixed key lands in the sampled 1-in-n
// bucket. Fastrange ((x*n)>>64 == 0, i.e. x < 2^64/n) instead of
// x%n == 0: one multiply against a ~30-cycle hardware divide, on a
// test that runs for every event, sampled or not.
func inClass(mixed, n uint64) bool {
	hi, _ := bits.Mul64(mixed, n)
	return hi == 0
}

// Sampled reports whether the identity would be traced, without
// allocating a span.
func (t *Tracer) Sampled(dpid, packetID uint64, kind uint8) bool {
	if t == nil || t.n == 0 {
		return false
	}
	return inClass(mix64(Key(dpid, packetID, kind)), t.n)
}

// Sample starts a span for the event identity if it falls in the
// sampled 1-in-N class, returning nil otherwise. The unsampled path
// performs no allocation — one hash, one compare.
func (t *Tracer) Sample(dpid, packetID uint64, kind uint8) *Span {
	if t == nil || t.n == 0 {
		return nil
	}
	key := Key(dpid, packetID, kind)
	if !inClass(mix64(key), t.n) {
		return nil
	}
	t.sampledC.Inc()
	return &Span{Key: key, DPID: dpid, PacketID: packetID, Kind: kind}
}

// Finish completes a span: exactly once, it renders the span into the
// ring and feeds the latency histograms. Duplicate calls (an event
// delivered to several shards, a span finished by both an engine and
// a shutdown path) are no-ops.
func (t *Tracer) Finish(s *Span) {
	if t == nil || s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	t.completedC.Inc()

	sl := slot{
		key: s.Key, dpid: s.DPID, packetID: s.PacketID, kind: s.Kind,
		offsetNs: s.offset.Load(), dispNs: s.disp.Load(),
	}
	prev := int64(0)
	for st := Stage(0); st < NumStages; st++ {
		raw := s.marks[st].Load()
		if raw == 0 {
			continue
		}
		sl.marks[st] = raw
		adj := s.adjusted(st)
		if prev != 0 {
			d := adj - prev
			if d < 0 {
				d = 0 // clock-offset error; clamp rather than wrap
			}
			sl.deltas |= 1 << st
			sl.stageNs[st] = d
			t.stageH[st].Observe(uint64(d))
		}
		prev = adj
	}
	if in, v := s.adjusted(StageIngress), s.adjusted(StageVerdict); in != 0 && v != 0 {
		d := v - in
		if d < 0 {
			d = 0
		}
		sl.e2eNs = d
		t.e2eH.Observe(uint64(d))
	}

	t.mu.Lock()
	sl.seq = t.total
	if len(t.recs) < cap(t.recs) {
		t.recs = append(t.recs, sl)
	} else {
		t.recs[t.next] = sl
		t.next = (t.next + 1) % cap(t.recs)
	}
	t.total++
	t.mu.Unlock()
}

// Total counts spans ever finished (including ones evicted from the
// ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot copies the retained completed spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recs) == 0 {
		return nil
	}
	out := make([]SpanRecord, 0, len(t.recs))
	for i := t.next; i < len(t.recs); i++ {
		out = append(out, t.recs[i].record())
	}
	for i := 0; i < t.next; i++ {
		out = append(out, t.recs[i].record())
	}
	return out
}

// WriteNDJSON renders records one JSON object per line — the /trace
// endpoint's format (application/x-ndjson).
func WriteNDJSON(w io.Writer, recs []SpanRecord) error {
	for i := range recs {
		b, err := json.Marshal(&recs[i])
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
