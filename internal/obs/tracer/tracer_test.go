package tracer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"switchmon/internal/obs"
)

func TestSamplingDeterministic(t *testing.T) {
	tr := New(Config{SampleN: 8})
	hits := 0
	for pid := uint64(0); pid < 8000; pid++ {
		a := tr.Sample(1, pid, 1)
		b := tr.Sampled(1, pid, 1)
		if (a != nil) != b {
			t.Fatalf("Sample and Sampled disagree for pid %d", pid)
		}
		if a != nil {
			hits++
		}
	}
	// 1-in-8 over 8000 structured keys: the mix keeps the class near
	// uniform; accept a generous band.
	if hits < 700 || hits > 1300 {
		t.Fatalf("sampled %d of 8000 at 1-in-8, want ~1000", hits)
	}
	// Same identity, same decision — always.
	for pid := uint64(0); pid < 100; pid++ {
		if tr.Sampled(1, pid, 1) != tr.Sampled(1, pid, 1) {
			t.Fatal("sampling decision not deterministic")
		}
	}
}

func TestSampleDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if nilT.Sample(1, 2, 3) != nil || nilT.Sampled(1, 2, 3) || nilT.SampleN() != 0 {
		t.Fatal("nil tracer sampled something")
	}
	nilT.Finish(&Span{})
	if nilT.Snapshot() != nil || nilT.Total() != 0 {
		t.Fatal("nil tracer retained something")
	}
	off := New(Config{SampleN: 0})
	for pid := uint64(0); pid < 100; pid++ {
		if off.Sample(1, pid, 1) != nil {
			t.Fatal("SampleN=0 sampled an event")
		}
	}
}

func TestStampFirstWins(t *testing.T) {
	var s Span
	s.StampAt(StageEnqueue, 100)
	s.StampAt(StageEnqueue, 200) // replay: must not overwrite
	if got := s.Mark(StageEnqueue); got != 100 {
		t.Fatalf("mark = %d, want 100 (first stamp wins)", got)
	}
	s.StampAt(StageIngress, 0) // zero is the unstamped sentinel
	if s.Mark(StageIngress) != 0 {
		t.Fatal("zero mark recorded")
	}
	if s.StageMask() != 1<<StageEnqueue {
		t.Fatalf("mask = %08b", s.StageMask())
	}
	// Nil-safety of every span method.
	var np *Span
	np.Stamp(StageIngress)
	np.StampAt(StageIngress, 5)
	np.SetClock(1, 1)
	np.MarkRemote(0xf)
	np.AddRefs(2)
	if np.Mark(StageIngress) != 0 || np.StageMask() != 0 || np.Release() {
		t.Fatal("nil span did something")
	}
}

func TestFinishComputesStageAndE2E(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{SampleN: 1, Metrics: reg})
	s := tr.Sample(7, 9, 1)
	base := int64(1_000_000_000_000)
	s.StampAt(StageIngress, base)
	s.StampAt(StageEnqueue, base+1000)
	s.StampAt(StageBatchSeal, base+3000)
	s.StampAt(StageWireSend, base+4000)
	s.MarkRemote(SwitchStageMask)
	s.SetClock(500, 40) // collector clock runs 500ns ahead
	s.StampAt(StageCollectorRecv, base+500+10_000)
	s.StampAt(StageShardDispatch, base+500+11_000)
	s.StampAt(StageVerdict, base+500+12_000)
	tr.Finish(s)
	tr.Finish(s) // idempotent

	if tr.Total() != 1 {
		t.Fatalf("total = %d, want 1 (Finish must be idempotent)", tr.Total())
	}
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("snapshot len = %d", len(recs))
	}
	r := recs[0]
	if r.DPID != 7 || r.PacketID != 9 || r.OffsetNs != 500 {
		t.Fatalf("record = %+v", r)
	}
	// Switch marks shift by +500 before deltas: wire flight is
	// (recv_local) − (send_remote + offset) = 10500 − 4500 = 6000.
	want := map[string]int64{
		"enqueue": 1000, "batch_seal": 2000, "wire_send": 1000,
		"collector_recv": 6000, "shard_dispatch": 1000, "verdict": 1000,
	}
	for k, v := range want {
		if r.StageNs[k] != v {
			t.Fatalf("stage %s = %d, want %d (%+v)", k, r.StageNs[k], v, r.StageNs)
		}
	}
	// E2E: verdict_local − (ingress_remote + offset) = 12500 − 500 = 12000.
	if r.E2ENs != 12000 {
		t.Fatalf("e2e = %d, want 12000", r.E2ENs)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("switchmon_trace_spans_completed_total"); got != 1 {
		t.Fatalf("completed counter = %d", got)
	}
}

func TestNegativeDeltaClamps(t *testing.T) {
	tr := New(Config{SampleN: 1})
	s := tr.Sample(1, 1, 0)
	s.StampAt(StageWireSend, 10_000)
	s.MarkRemote(SwitchStageMask)
	s.SetClock(-9000, 100) // bad offset estimate: recv appears before send
	s.StampAt(StageCollectorRecv, 500)
	tr.Finish(s)
	r := tr.Snapshot()[0]
	if r.StageNs["collector_recv"] != 0 {
		t.Fatalf("negative delta must clamp to 0, got %d", r.StageNs["collector_recv"])
	}
}

func TestReleaseRefCounting(t *testing.T) {
	var s Span
	s.AddRefs(3)
	if s.Release() || s.Release() {
		t.Fatal("released early")
	}
	if !s.Release() {
		t.Fatal("last release not signalled")
	}
	// No AddRefs: single-consumer spans release immediately.
	var lone Span
	if !lone.Release() {
		t.Fatal("unreferenced span must release immediately")
	}
}

func TestRingWrapAndSnapshotOrder(t *testing.T) {
	tr := New(Config{SampleN: 1, Ring: 4})
	for i := 0; i < 10; i++ {
		s := &Span{Key: uint64(i), PacketID: uint64(i)}
		s.StampAt(StageVerdict, int64(i+1))
		tr.Finish(s)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("retained = %d, want 4", len(recs))
	}
	for i, r := range recs {
		if r.PacketID != uint64(6+i) {
			t.Fatalf("record %d = pkt %d, want %d (oldest first)", i, r.PacketID, 6+i)
		}
	}
}

func TestWriteNDJSON(t *testing.T) {
	tr := New(Config{SampleN: 1})
	s := tr.Sample(3, 4, 1)
	s.StampAt(StageIngress, 100)
	s.StampAt(StageVerdict, 350)
	tr.Finish(s)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if rec.DPID != 3 || rec.E2ENs != 250 || rec.Marks["ingress"] != 100 {
		t.Fatalf("decoded = %+v", rec)
	}
}

func TestClockEstimator(t *testing.T) {
	reg := obs.NewRegistry()
	offG := reg.Gauge("off", "o")
	dspG := reg.Gauge("dsp", "d")
	ce := NewClockEstimator(offG, dspG)
	if _, _, ok := ce.Estimate(); ok {
		t.Fatal("estimate before any sample")
	}
	// Peer clock runs 1ms ahead; RTT 200µs.
	ce.AddSample(1_000_000, 2_100_000, 1_200_000)
	off, dsp, ok := ce.Estimate()
	if !ok || off != 1_000_000 || dsp != 100_000 {
		t.Fatalf("estimate = %d/%d/%v, want 1ms/100µs", off, dsp, ok)
	}
	// EWMA: a second, different sample moves the estimate by 1/8.
	ce.AddSample(2_000_000, 3_900_000, 2_200_000)
	off, _, _ = ce.Estimate()
	if off != 1_100_000 {
		t.Fatalf("EWMA offset = %d, want 1.1ms", off)
	}
	if offG.Value() != 1_100_000 {
		t.Fatalf("gauge = %d", offG.Value())
	}
	// Negative RTT and nil receivers are inert.
	ce.AddSample(500, 1, 400)
	if ce.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", ce.Samples())
	}
	var nc *ClockEstimator
	nc.AddSample(1, 2, 3)
	if _, _, ok := nc.Estimate(); ok || nc.Samples() != 0 {
		t.Fatal("nil estimator not inert")
	}
}

func TestConcurrentStampAndFinish(t *testing.T) {
	tr := New(Config{SampleN: 1, Ring: 64})
	const spans = 64
	var wg sync.WaitGroup
	for i := 0; i < spans; i++ {
		s := tr.Sample(1, uint64(i), 1)
		s.AddRefs(4)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(s *Span) {
				defer wg.Done()
				s.Stamp(StageShardDispatch)
				if s.Release() {
					s.Stamp(StageVerdict)
					tr.Finish(s)
				}
			}(s)
		}
	}
	wg.Wait()
	if tr.Total() != spans {
		t.Fatalf("finished %d spans, want %d (exactly once each)", tr.Total(), spans)
	}
}

// The unsampled path runs once per event on every instrumented hot
// path: it must not allocate. check.sh gates on this test by name.
func TestUnsampledPathZeroAlloc(t *testing.T) {
	tr := New(Config{SampleN: 1 << 40, Metrics: obs.NewRegistry()}) // effectively never samples
	var nilSpan *Span
	pid := uint64(0)
	avg := testing.AllocsPerRun(1000, func() {
		if sp := tr.Sample(1, pid, 1); sp != nil {
			t.Fatal("unexpected sample")
		}
		nilSpan.Stamp(StageEnqueue)
		nilSpan.Stamp(StageWireSend)
		if nilSpan.Release() {
			t.Fatal("nil span released")
		}
		tr.Finish(nilSpan)
		pid++
	})
	if avg != 0 {
		t.Fatalf("unsampled tracing path allocates %.1f/op, want 0", avg)
	}
}

func TestKeyDistinguishesIdentity(t *testing.T) {
	seen := map[uint64]string{}
	for dpid := uint64(1); dpid <= 3; dpid++ {
		for pid := uint64(1); pid <= 100; pid++ {
			for kind := uint8(0); kind < 3; kind++ {
				k := Key(dpid, pid, kind)
				id := fmt.Sprintf("%d/%d/%d", dpid, pid, kind)
				if prev, dup := seen[k]; dup {
					t.Fatalf("key collision: %s and %s", prev, id)
				}
				seen[k] = id
			}
		}
	}
}
