package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events", L("property", "fw"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("occupancy", "live instances")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// Registration is get-or-create: the same (name, labels) returns the
// same instrument regardless of label order — the mechanism shards use
// to share per-property counters.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("same series resolved to two counters")
	}
	c := r.Counter("x_total", "x", L("a", "2"), L("b", "2"))
	if a == c {
		t.Fatal("distinct labels resolved to one counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "m")
}

// Nil instruments and registries are inert: a monitor built without
// telemetry records into nil handles at zero cost and zero risk.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "x")
	c.Inc()
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(9)
	var ring *Ring
	ring.Record(TraceRecord{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || ring.Total() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if len(r.Snapshot().Families) != 0 || ring.Snapshot() != nil {
		t.Fatal("nil snapshots not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024, 1 << 40} {
		h.Observe(v)
	}
	b := h.Buckets()
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1, 41: 1}
	for i, n := range b {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1023+1024+1<<40 {
		t.Errorf("sum = %d", h.Sum())
	}
	if BucketBound(0) != 0 || BucketBound(1) != 1 || BucketBound(11) != 2047 || BucketBound(64) != ^uint64(0) {
		t.Error("bucket bounds wrong")
	}
}

// The hot-path recording operations must not allocate: they run once
// per event inside the monitor's steady state. check.sh gates on this
// test by name.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "e")
	g := r.Gauge("occupancy", "o")
	h := r.Histogram("latency_ns", "l")
	var v uint64
	avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Add(1)
		g.Set(3)
		h.Observe(v)
		v += 1337
	})
	if avg != 0 {
		t.Fatalf("hot-path recording allocates %.1f/op, want 0", avg)
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "h", L("table", "0"))
	r.Gauge("depth", "d").Set(5)
	r.Histogram("batch", "b").Observe(64)
	c.Add(10)
	before := r.Snapshot()
	c.Add(7)
	r.Counter("hits_total", "h", L("table", "1")).Add(3)
	after := r.Snapshot()

	if got := before.CounterValue("hits_total", L("table", "0")); got != 10 {
		t.Fatalf("before counter = %d, want 10", got)
	}
	diff := DiffCounters(before, after)
	if len(diff) != 2 || diff[`hits_total{table=0}`] != 7 || diff[`hits_total{table=1}`] != 3 {
		t.Fatalf("diff = %v", diff)
	}

	// Histogram snapshot shape: trailing empty buckets trimmed.
	var hist *SeriesSnapshot
	for i := range after.Families {
		if after.Families[i].Name == "batch" {
			hist = &after.Families[i].Series[0]
		}
	}
	if hist == nil || hist.Count != 1 || hist.Sum != 64 || len(hist.Buckets) != 8 || hist.Buckets[7] != 1 {
		t.Fatalf("histogram snapshot = %+v", hist)
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(TraceRecord{Property: fmt.Sprintf("p%d", i), Time: time.Unix(int64(i), 0)})
	}
	if ring.Total() != 10 {
		t.Fatalf("total = %d, want 10", ring.Total())
	}
	snap := ring.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	for i, rec := range snap {
		wantSeq := uint64(6 + i)
		if rec.Seq != wantSeq || rec.Property != fmt.Sprintf("p%d", wantSeq) {
			t.Fatalf("record %d = %+v, want seq %d", i, rec, wantSeq)
		}
	}
}

// Concurrent recorders and scrapers must not trip the race detector and
// must not lose counts.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(8)
	const workers, perWorker = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total", "s")
			h := r.Histogram("lat", "l", L("shard", fmt.Sprint(w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i))
				if i%100 == 0 {
					ring.Record(TraceRecord{Property: "p"})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
				_ = ring.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := r.Snapshot().CounterValue("shared_total"); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
}
