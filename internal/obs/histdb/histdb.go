// Package histdb is the monitor's memory: a fixed-size in-process ring
// TSDB that samples an obs registry at a configurable cadence and
// answers windowed queries over the recent past — the substrate under
// the /query endpoint and the SLO burn-rate engine (obs/slo).
//
// Each sample tick stores, per live series: counters as a per-second
// rate (the delta against the previous tick over the elapsed wall
// time), gauges raw, and histograms as three derived series — the p50,
// p99, and max of the observations that arrived in the tick window,
// read from the power-of-two bucket deltas via obs.HistQuantile. Keys
// are the obs.SeriesKey flat form with the derived suffix spliced into
// the name: switchmon_trace_stage_ns{stage=seal} yields
// switchmon_trace_stage_ns_p99{stage=seal}.
//
// The sampler has two sources. Registry mode caches live instrument
// pointers and rescans them only when the registry's series generation
// moves, so a steady-state tick is reads, arithmetic, and ring writes —
// zero allocations (gated by TestSamplerTickZeroAlloc in check.sh).
// Snapshot mode (Config.Source) re-samples an arbitrary snapshot
// producer each tick; fleetagg uses it over merged member scrapes,
// where the scrape itself allocates and the zero-alloc property is
// neither possible nor interesting.
package histdb

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"switchmon/internal/obs"
)

// kind discriminates what one stored series holds.
const (
	kindRate  = "rate"  // counter delta per second
	kindGauge = "gauge" // gauge sampled raw
	kindP50   = "p50"   // windowed histogram quantiles (per tick)
	kindP99   = "p99"
	kindMax   = "max"
)

// histSuffixes orders a histogram's derived series.
var histSuffixes = [3]string{"_p50", "_p99", "_max"}

// histKinds matches histSuffixes by index.
var histKinds = [3]string{kindP50, kindP99, kindMax}

// Config parameterizes a DB.
type Config struct {
	// Registry is the live source: instrument pointers are cached and
	// sampled directly (the zero-alloc path). Exactly one of Registry
	// and Source must be set.
	Registry *obs.Registry
	// Source is the snapshot source: called once per tick. For
	// aggregation tiers whose "registry" is a merged member scrape.
	Source func() obs.Snapshot
	// SampleEvery is the tick cadence (default 1s).
	SampleEvery time.Duration
	// Retention bounds how far back the ring reaches (default 10m).
	// The ring holds Retention/SampleEvery slots.
	Retention time.Duration
	// Now overrides the clock (tests drive Tick manually).
	Now func() time.Time
}

// track is one source instrument and its stored value rings: one ring
// for a counter or gauge, three (p50/p99/max) for a histogram.
type track struct {
	keys  []string
	kinds []string

	// Registry mode: exactly one non-nil.
	ctr *obs.Counter
	g   *obs.Gauge
	h   *obs.Histogram

	last    uint64      // counter: previous raw value
	lastB   [65]uint64  // histogram: previous bucket counts
	hasLast bool        // a previous sample exists (rates/deltas defined)
	vals    [][]float64 // value rings, aligned with DB.times
}

// DB is the ring TSDB. All methods are safe for concurrent use.
type DB struct {
	mu     sync.Mutex
	cfg    Config
	slots  int
	times  []int64 // unix nanos per slot
	head   int     // next slot to write
	n      int     // filled slots
	lastT  int64   // previous tick's unix nanos (rate denominator)
	tracks []*track
	byKey  map[string]*track // primary key (keys[0]) -> track
	regGen uint64            // registry generation at last rescan
	tGen   uint64            // bumps when the track set changes

	hooks []func(now time.Time)

	stop chan struct{}
	done chan struct{}
}

// New builds a DB over the configured source. It panics if neither or
// both of Registry and Source are set.
func New(cfg Config) *DB {
	if (cfg.Registry == nil) == (cfg.Source == nil) {
		panic("histdb: exactly one of Config.Registry and Config.Source must be set")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 10 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	slots := int(cfg.Retention / cfg.SampleEvery)
	if slots < 2 {
		slots = 2
	}
	if slots > 1<<20 {
		slots = 1 << 20
	}
	return &DB{
		cfg:   cfg,
		slots: slots,
		times: make([]int64, slots),
		byKey: map[string]*track{},
	}
}

// SampleEvery reports the configured tick cadence.
func (db *DB) SampleEvery() time.Duration { return db.cfg.SampleEvery }

// Retention reports the configured ring span.
func (db *DB) Retention() time.Duration { return db.cfg.Retention }

// Start launches the background sampler goroutine at the configured
// cadence. Close stops it.
func (db *DB) Start() {
	db.mu.Lock()
	if db.stop != nil {
		db.mu.Unlock()
		return
	}
	db.stop = make(chan struct{})
	db.done = make(chan struct{})
	stop, done := db.stop, db.done
	db.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(db.cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				db.Tick()
			}
		}
	}()
}

// Close stops the background sampler, if running.
func (db *DB) Close() {
	db.mu.Lock()
	stop, done := db.stop, db.done
	db.stop, db.done = nil, nil
	db.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// OnTick registers a hook invoked after every sample tick, outside the
// DB lock — the SLO engine's evaluation trigger, so alert cadence
// follows sample cadence with no second timer.
func (db *DB) OnTick(fn func(now time.Time)) {
	db.mu.Lock()
	db.hooks = append(db.hooks, fn)
	db.mu.Unlock()
}

// Tick takes one sample: every tracked series gains one point stamped
// with the current clock. In registry mode a steady-state tick (no new
// series since the last rescan) performs no allocations.
func (db *DB) Tick() {
	now := db.cfg.Now()
	// Snapshot-mode sources can be slow — fleetagg's Source is a
	// concurrent HTTP scrape of every member with per-call timeouts —
	// so collect the snapshot before taking db.mu; readers (/query,
	// WindowAvg, ResolveGlob) must never block behind a dark member.
	var snap obs.Snapshot
	if db.cfg.Source != nil {
		snap = db.cfg.Source()
	}
	db.mu.Lock()
	if db.cfg.Registry != nil {
		db.tickRegistry(now)
	} else {
		db.tickSnapshot(now, snap)
	}
	hooks := db.hooks
	db.mu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
}

// tickRegistry samples cached instrument pointers, rescanning only
// when the registry generation moved. Called with db.mu held.
func (db *DB) tickRegistry(now time.Time) {
	if gen := db.cfg.Registry.Gen(); gen != db.regGen {
		db.rescanRegistry()
		db.regGen = gen
	}
	nowNS := now.UnixNano()
	dt := float64(nowNS-db.lastT) / float64(time.Second)
	slot := db.head
	db.times[slot] = nowNS
	for _, tr := range db.tracks {
		switch {
		case tr.ctr != nil:
			cur := tr.ctr.Value()
			v := math.NaN()
			if tr.hasLast && dt > 0 {
				v = float64(cur-tr.last) / dt
			}
			tr.last, tr.hasLast = cur, true
			tr.vals[0][slot] = v
		case tr.g != nil:
			tr.vals[0][slot] = float64(tr.g.Value())
		case tr.h != nil:
			cur := tr.h.Buckets()
			var delta [65]uint64
			nonEmpty := false
			for i := range cur {
				d := cur[i] - tr.lastB[i]
				delta[i] = d
				if d != 0 {
					nonEmpty = true
				}
			}
			if !tr.hasLast || !nonEmpty {
				tr.vals[0][slot] = math.NaN()
				tr.vals[1][slot] = math.NaN()
				tr.vals[2][slot] = math.NaN()
			} else {
				tr.vals[0][slot] = float64(obs.HistQuantile(delta[:], 0.50))
				tr.vals[1][slot] = float64(obs.HistQuantile(delta[:], 0.99))
				tr.vals[2][slot] = float64(obs.HistMaxBound(delta[:]))
			}
			tr.lastB, tr.hasLast = cur, true
		}
	}
	db.advance(nowNS)
}

// rescanRegistry resolves instruments the DB has not seen yet. Called
// with db.mu held; allocation here is fine — it runs only when a new
// series registers, not in steady state.
func (db *DB) rescanRegistry() {
	db.cfg.Registry.ForEachSeries(func(name, _ string, labels []obs.Label, ctr *obs.Counter, g *obs.Gauge, h *obs.Histogram) {
		key := obs.SeriesKey(name, labels)
		if _, ok := db.byKey[key]; ok {
			return
		}
		tr := &track{ctr: ctr, g: g, h: h}
		switch {
		case ctr != nil:
			tr.keys = []string{key}
			tr.kinds = []string{kindRate}
		case g != nil:
			tr.keys = []string{key}
			tr.kinds = []string{kindGauge}
		case h != nil:
			tr.keys = make([]string, 3)
			tr.kinds = histKinds[:]
			for i, suf := range histSuffixes {
				tr.keys[i] = obs.SeriesKey(name+suf, labels)
			}
		}
		db.addTrack(key, tr)
	})
}

// addTrack registers a new track and NaN-backfills its rings. Called
// with db.mu held.
func (db *DB) addTrack(key string, tr *track) {
	tr.vals = make([][]float64, len(tr.keys))
	for i := range tr.vals {
		ring := make([]float64, db.slots)
		for j := range ring {
			ring[j] = math.NaN()
		}
		tr.vals[i] = ring
	}
	db.byKey[key] = tr
	db.tracks = append(db.tracks, tr)
	db.tGen++
}

// tickSnapshot stores one pre-collected Source snapshot. Called with
// db.mu held; the snapshot itself is taken outside the lock (Tick).
func (db *DB) tickSnapshot(now time.Time, snap obs.Snapshot) {
	nowNS := now.UnixNano()
	dt := float64(nowNS-db.lastT) / float64(time.Second)
	slot := db.head
	db.times[slot] = nowNS
	// Every tracked series defaults to NaN for this slot; series present
	// in the snapshot overwrite it below. A series that vanishes (a
	// member leaving the fleet) therefore reads as "no data", not as a
	// stale repeat of its last value.
	for _, tr := range db.tracks {
		for i := range tr.vals {
			tr.vals[i][slot] = math.NaN()
		}
	}
	for _, f := range snap.Families {
		for _, ser := range f.Series {
			key := obs.SeriesKey(f.Name, ser.Labels)
			tr := db.byKey[key]
			if tr == nil {
				tr = &track{}
				switch f.Kind {
				case "counter":
					tr.keys = []string{key}
					tr.kinds = []string{kindRate}
				case "gauge":
					tr.keys = []string{key}
					tr.kinds = []string{kindGauge}
				case "histogram":
					tr.keys = make([]string, 3)
					tr.kinds = histKinds[:]
					for i, suf := range histSuffixes {
						tr.keys[i] = obs.SeriesKey(f.Name+suf, ser.Labels)
					}
				default:
					continue
				}
				db.addTrack(key, tr)
			}
			switch f.Kind {
			case "counter":
				cur := uint64(ser.Value)
				v := math.NaN()
				// Snapshot totals can regress — a member restarts, or a
				// merged fleet snapshot misses a member for one scrape.
				// A regressed total is a reset, not a wrapped uint64
				// delta: record no rate for this tick.
				if tr.hasLast && dt > 0 && cur >= tr.last {
					v = float64(cur-tr.last) / dt
				}
				tr.last, tr.hasLast = cur, true
				tr.vals[0][slot] = v
			case "gauge":
				tr.vals[0][slot] = float64(ser.Value)
			case "histogram":
				var delta [65]uint64
				nonEmpty := false
				reset := false
				for i, n := range ser.Buckets {
					if i >= len(delta) {
						break
					}
					// A regressed bucket count means the source reset
					// (same as the counter case above): the deltas are
					// meaningless this tick, so record no quantiles.
					if n < tr.lastB[i] {
						reset = true
						break
					}
					d := n - tr.lastB[i]
					delta[i] = d
					if d != 0 {
						nonEmpty = true
					}
				}
				if tr.hasLast && nonEmpty && !reset {
					tr.vals[0][slot] = float64(obs.HistQuantile(delta[:], 0.50))
					tr.vals[1][slot] = float64(obs.HistQuantile(delta[:], 0.99))
					tr.vals[2][slot] = float64(obs.HistMaxBound(delta[:]))
				}
				var cur [65]uint64
				copy(cur[:], ser.Buckets)
				tr.lastB, tr.hasLast = cur, true
			}
		}
	}
	db.advance(nowNS)
}

// advance commits the slot just written. Called with db.mu held.
func (db *DB) advance(nowNS int64) {
	db.head = (db.head + 1) % db.slots
	if db.n < db.slots {
		db.n++
	}
	db.lastT = nowNS
}

// TrackGen reports the track-set generation: it moves when the DB
// starts storing a series it had not seen before. The SLO engine
// re-resolves its rule globs only when this moves.
func (db *DB) TrackGen() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tGen
}

// Handle names one stored series inside the DB, resolved from a glob
// once and then read allocation-free via WindowAvg.
type Handle struct {
	tr *track
	j  int
}

// Key reports the handle's flat series key.
func (h Handle) Key() string {
	if h.tr == nil {
		return ""
	}
	return h.tr.keys[h.j]
}

// ResolveGlob returns handles for every stored series whose key
// matches the '|'-separated glob list (see MatchGlob).
func (db *DB) ResolveGlob(pattern string) []Handle {
	globs := splitGlobs(pattern)
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Handle
	for _, tr := range db.tracks {
		for j, key := range tr.keys {
			if matchAny(globs, key) {
				out = append(out, Handle{tr: tr, j: j})
			}
		}
	}
	return out
}

// WindowAvg averages the series' samples over the trailing window
// (rounded up to whole ticks), skipping no-data slots. n is the number
// of samples that contributed; n == 0 means the window holds no data.
func (db *DB) WindowAvg(h Handle, window time.Duration) (avg float64, n int) {
	if h.tr == nil {
		return 0, 0
	}
	k := int((window + db.cfg.SampleEvery - 1) / db.cfg.SampleEvery)
	if k < 1 {
		k = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if k > db.n {
		k = db.n
	}
	ring := h.tr.vals[h.j]
	sum := 0.0
	for i := 1; i <= k; i++ {
		slot := (db.head - i + db.slots) % db.slots
		v := ring[slot]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Point is one stored sample.
type Point struct {
	// T is the sample's unix time in nanoseconds.
	T int64 `json:"t"`
	// V is the stored value (rate, gauge level, or derived quantile).
	V float64 `json:"v"`
}

// Series is one stored series in a QueryResult.
type Series struct {
	// Key is the flat series key (obs.SeriesKey form, histogram-derived
	// series carry a _p50/_p99/_max name suffix).
	Key string `json:"key"`
	// Kind is "rate", "gauge", "p50", "p99", or "max".
	Kind string `json:"kind"`
	// Points holds the matching samples, oldest first.
	Points []Point `json:"points"`
}

// QueryResult is the /query response document.
type QueryResult struct {
	// SampleEveryNS is the sampler cadence in nanoseconds.
	SampleEveryNS int64 `json:"sample_every_ns"`
	// RetentionNS is the ring span in nanoseconds.
	RetentionNS int64 `json:"retention_ns"`
	// NowUnixNS is the newest stored sample's timestamp.
	NowUnixNS int64 `json:"now_unix_ns"`
	// Series holds every matching series, in discovery order.
	Series []Series `json:"series"`
}

// Query answers a windowed read: every stored series matching the
// '|'-separated glob list, restricted to samples strictly newer than
// sinceUnixNS (0 = everything retained), downsampled to one point per
// step (0 = every sample; the newest sample is always representable).
// No-data slots are omitted.
func (db *DB) Query(pattern string, sinceUnixNS int64, step time.Duration) (QueryResult, error) {
	globs := splitGlobs(pattern)
	if len(globs) == 0 {
		return QueryResult{}, fmt.Errorf("empty series glob")
	}
	for _, g := range globs {
		if g == "" {
			return QueryResult{}, fmt.Errorf("empty series glob")
		}
	}
	stride := 1
	if step > 0 {
		stride = int(step / db.cfg.SampleEvery)
		if stride < 1 {
			stride = 1
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	res := QueryResult{
		SampleEveryNS: int64(db.cfg.SampleEvery),
		RetentionNS:   int64(db.cfg.Retention),
	}
	if db.n > 0 {
		res.NowUnixNS = db.times[(db.head-1+db.slots)%db.slots]
	}
	for _, tr := range db.tracks {
		for j, key := range tr.keys {
			if !matchAny(globs, key) {
				continue
			}
			s := Series{Key: key, Kind: tr.kinds[j]}
			ring := tr.vals[j]
			// Walk oldest -> newest; the stride phase is anchored on the
			// newest sample so the freshest point survives downsampling.
			for i := db.n; i >= 1; i-- {
				if (i-1)%stride != 0 {
					continue
				}
				slot := (db.head - i + db.slots) % db.slots
				t := db.times[slot]
				if t <= sinceUnixNS {
					continue
				}
				v := ring[slot]
				if math.IsNaN(v) {
					continue
				}
				s.Points = append(s.Points, Point{T: t, V: v})
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// splitGlobs breaks a '|'-separated glob list into its parts.
func splitGlobs(pattern string) []string {
	if pattern == "" {
		return nil
	}
	return strings.Split(pattern, "|")
}

// matchAny reports whether key matches any glob in the list.
func matchAny(globs []string, key string) bool {
	for _, g := range globs {
		if MatchGlob(g, key) {
			return true
		}
	}
	return false
}

// MatchGlob matches key against a glob where '*' matches any run of
// bytes (including none) and '?' matches exactly one; every other byte
// is literal — so metric keys' '{', '=', and ',' need no escaping.
func MatchGlob(pattern, key string) bool {
	// Iterative wildcard match with single-star backtracking.
	pi, ki := 0, 0
	star, mark := -1, 0
	for ki < len(key) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == key[ki]):
			pi++
			ki++
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, ki
			pi++
		case star >= 0:
			mark++
			pi, ki = star+1, mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
