package histdb

import (
	"math"
	"testing"
	"time"

	"switchmon/internal/obs"
)

// fakeClock yields a controllable, strictly advancing clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func newTestDB(t *testing.T, reg *obs.Registry, every, retention time.Duration) (*DB, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	db := New(Config{Registry: reg, SampleEvery: every, Retention: retention, Now: clk.now})
	return db, clk
}

func TestCounterRateAndGaugeSampling(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("switchmon_events_total", "")
	g := reg.Gauge("switchmon_depth", "")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)

	db.Tick() // baseline: rate undefined
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		ctr.Add(100)
		g.Set(int64(i))
		db.Tick()
	}

	res, err := db.Query("switchmon_events_total", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || res.Series[0].Kind != "rate" {
		t.Fatalf("series = %+v, want one rate series", res.Series)
	}
	pts := res.Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("rate points = %d, want 5 (first tick has no baseline)", len(pts))
	}
	for _, p := range pts {
		if p.V != 100 {
			t.Fatalf("rate = %v, want 100/s", p.V)
		}
	}

	res, err = db.Query("switchmon_depth", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts = res.Series[0].Points
	if len(pts) != 6 || pts[5].V != 4 {
		t.Fatalf("gauge points = %+v, want 6 raw samples ending at 4", pts)
	}
}

func TestHistogramDerivedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("switchmon_lat_ns", "", obs.L("stage", "seal"))
	db, clk := newTestDB(t, reg, time.Second, time.Minute)

	db.Tick()
	clk.advance(time.Second)
	for i := 0; i < 99; i++ {
		h.Observe(1000) // bucket 10, bound 1023
	}
	h.Observe(1 << 20) // bucket 21, bound 2^21-1
	db.Tick()
	clk.advance(time.Second)
	db.Tick() // no new observations: a no-data slot

	res, err := db.Query("switchmon_lat_ns_*", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Series{}
	for _, s := range res.Series {
		got[s.Key] = s
	}
	p50 := got["switchmon_lat_ns_p50{stage=seal}"]
	p99 := got["switchmon_lat_ns_p99{stage=seal}"]
	mx := got["switchmon_lat_ns_max{stage=seal}"]
	if p50.Kind != "p50" || p99.Kind != "p99" || mx.Kind != "max" {
		t.Fatalf("kinds = %v/%v/%v", p50.Kind, p99.Kind, mx.Kind)
	}
	if len(p50.Points) != 1 || p50.Points[0].V != 1023 {
		t.Fatalf("p50 = %+v, want one point at 1023", p50.Points)
	}
	if len(p99.Points) != 1 || p99.Points[0].V != 1023 {
		t.Fatalf("p99 = %+v, want one point at 1023 (rank 99 of 100)", p99.Points)
	}
	if len(mx.Points) != 1 || mx.Points[0].V != float64(uint64(1<<21-1)) {
		t.Fatalf("max = %+v, want one point at 2^21-1", mx.Points)
	}
}

func TestQuerySinceStepAndBadGlob(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)
	var times []int64
	for i := 0; i < 10; i++ {
		g.Set(int64(i))
		db.Tick()
		times = append(times, clk.t.UnixNano())
		clk.advance(time.Second)
	}

	res, err := db.Query("g", times[6], 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Series[0].Points); n != 3 {
		t.Fatalf("since filter kept %d points, want 3 (strictly newer)", n)
	}

	res, err = db.Query("g", 0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("step=3s kept %d points, want 4", len(pts))
	}
	if pts[len(pts)-1].T != times[9] {
		t.Fatal("downsampling must keep the newest sample")
	}

	if _, err := db.Query("", 0, 0); err == nil {
		t.Fatal("empty glob must error")
	}
	if _, err := db.Query("a|", 0, 0); err == nil {
		t.Fatal("empty glob in a list must error")
	}
}

func TestRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	db, clk := newTestDB(t, reg, time.Second, 4*time.Second)
	for i := 0; i < 10; i++ {
		g.Set(int64(i))
		db.Tick()
		clk.advance(time.Second)
	}
	res, err := db.Query("g", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want 4 (retention/cadence)", len(pts))
	}
	if pts[0].V != 6 || pts[3].V != 9 {
		t.Fatalf("retained window = %+v, want gauges 6..9", pts)
	}
}

func TestWindowAvgAndHandles(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("c_total", "")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)
	db.Tick()
	for i := 0; i < 6; i++ {
		clk.advance(time.Second)
		ctr.Add(uint64(10 * (i + 1))) // rates 10,20,...,60
		db.Tick()
	}
	hs := db.ResolveGlob("c_total")
	if len(hs) != 1 || hs[0].Key() != "c_total" {
		t.Fatalf("ResolveGlob = %+v", hs)
	}
	avg, n := db.WindowAvg(hs[0], 3*time.Second)
	if n != 3 || avg != 50 {
		t.Fatalf("WindowAvg(3s) = %v over %d, want 50 over 3", avg, n)
	}
	avg, n = db.WindowAvg(hs[0], time.Minute)
	if n != 6 || avg != 35 {
		t.Fatalf("WindowAvg(1m) = %v over %d, want 35 over 6 (NaN baseline skipped)", avg, n)
	}
}

func TestSnapshotSourceMode(t *testing.T) {
	var snap obs.Snapshot
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	db := New(Config{Source: func() obs.Snapshot { return snap }, SampleEvery: time.Second, Retention: time.Minute, Now: clk.now})

	set := func(ctr int64, reach int64) {
		snap = obs.Snapshot{Families: []obs.FamilySnapshot{
			{Name: "switchmon_fleet_events_total", Kind: "counter", Series: []obs.SeriesSnapshot{{Value: ctr}}},
			{Name: "switchmon_fleet_members_reachable", Kind: "gauge", Series: []obs.SeriesSnapshot{{Value: reach}}},
		}}
	}
	set(0, 3)
	db.Tick()
	for i := 1; i <= 3; i++ {
		clk.advance(time.Second)
		set(int64(i)*1000, 2)
		db.Tick()
	}
	res, err := db.Query("switchmon_fleet_*", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		switch s.Key {
		case "switchmon_fleet_events_total":
			if len(s.Points) != 3 || s.Points[0].V != 1000 {
				t.Fatalf("counter rate = %+v, want 3 points at 1000/s", s.Points)
			}
		case "switchmon_fleet_members_reachable":
			if len(s.Points) != 4 || s.Points[3].V != 2 {
				t.Fatalf("gauge = %+v", s.Points)
			}
		}
	}
}

// TestSnapshotResetGuard: a snapshot total (or histogram bucket count)
// that regresses — a member restart, or a merged fleet snapshot missing
// a member for one scrape — is a reset, not a wrapped uint64 delta. The
// regressed tick must record no rate and no quantiles rather than an
// astronomical ~1.8e19 sample that would poison every burn window.
func TestSnapshotResetGuard(t *testing.T) {
	var snap obs.Snapshot
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	db := New(Config{Source: func() obs.Snapshot { return snap }, SampleEvery: time.Second, Retention: time.Minute, Now: clk.now})

	set := func(total int64, b3 uint64) {
		snap = obs.Snapshot{Families: []obs.FamilySnapshot{
			{Name: "switchmon_fleet_events_total", Kind: "counter", Series: []obs.SeriesSnapshot{{Value: total}}},
			{Name: "switchmon_fleet_lat_ns", Kind: "histogram", Series: []obs.SeriesSnapshot{{Buckets: []uint64{0, 0, 0, b3}}}},
		}}
	}
	step := func(total int64, b3 uint64) {
		clk.advance(time.Second)
		set(total, b3)
		db.Tick()
	}
	set(5000, 50)
	db.Tick()
	step(6000, 60) // healthy: +1000/s, +10 observations
	step(1000, 10) // regression: member restarted / dropped from merge
	step(2000, 20) // healthy again from the new baseline

	res, err := db.Query("switchmon_fleet_*", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.V > 1e15 {
				t.Fatalf("series %s holds wrapped-delta sample %v: %+v", s.Key, p.V, s.Points)
			}
		}
		switch s.Key {
		case "switchmon_fleet_events_total":
			// The regressed tick is a no-data hole; the flanking healthy
			// ticks both rate at 1000/s.
			if len(s.Points) != 2 || s.Points[0].V != 1000 || s.Points[1].V != 1000 {
				t.Fatalf("counter rate = %+v, want [1000 1000] around the reset hole", s.Points)
			}
		case "switchmon_fleet_lat_ns_p50":
			if len(s.Points) != 2 {
				t.Fatalf("p50 = %+v, want 2 points around the reset hole", s.Points)
			}
		}
	}
}

// TestSlowSourceDoesNotBlockReads: the snapshot source (fleetagg's
// concurrent member scrape) can stall for seconds on a dark member;
// the scrape runs outside db.mu, so reads must complete while a tick's
// scrape is still in flight.
func TestSlowSourceDoesNotBlockReads(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	db := New(Config{Source: func() obs.Snapshot {
		close(entered)
		<-release
		return obs.Snapshot{}
	}, SampleEvery: time.Second, Retention: time.Minute, Now: clk.now})
	done := make(chan struct{})
	go func() {
		db.Tick()
		close(done)
	}()
	<-entered // the scrape is in flight now
	if _, err := db.Query("*", 0, 0); err != nil {
		t.Fatal(err)
	}
	db.WindowAvg(Handle{}, time.Second)
	close(release)
	<-done
}

// TestSamplerTickZeroAlloc is check.sh's sampler gate: once the track
// set is discovered, a registry-mode sample tick must not allocate,
// no matter how busy the instruments are.
func TestSamplerTickZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	var ctrs []*obs.Counter
	var hists []*obs.Histogram
	for _, name := range []string{"a_total", "b_total", "c_total", "d_total"} {
		ctrs = append(ctrs, reg.Counter("switchmon_"+name, ""))
	}
	for i := 0; i < 4; i++ {
		reg.Gauge("switchmon_g", "", obs.L("shard", string(rune('0'+i))))
	}
	hists = append(hists,
		reg.Histogram("switchmon_lat_ns", "", obs.L("stage", "seal")),
		reg.Histogram("switchmon_lat_ns", "", obs.L("stage", "send")))
	db, clk := newTestDB(t, reg, time.Second, time.Minute)
	db.Tick() // discovery rescan

	i := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		i++
		clk.advance(time.Second)
		for _, c := range ctrs {
			c.Add(i)
		}
		for _, h := range hists {
			h.Observe(i * 1000)
		}
		db.Tick()
	})
	if allocs != 0 {
		t.Fatalf("steady-state sample tick allocates %v times, want 0", allocs)
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pat, key string
		want     bool
	}{
		{"*", "anything", true},
		{"switchmon_*_total", "switchmon_events_total", true},
		{"switchmon_*_total", "switchmon_events_totals", false},
		{"*shed_events_total*", "switchmon_ledger_shed_events_total{shard=1}", true},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"g{x=1}", "g{x=1}", true},
		{"", "x", false},
		{"", "", true},
		{"*{path=a/b}", "m{path=a/b}", true},
	}
	for _, c := range cases {
		if got := MatchGlob(c.pat, c.key); got != c.want {
			t.Errorf("MatchGlob(%q, %q) = %v, want %v", c.pat, c.key, got, c.want)
		}
	}
}

func TestLateSeriesBackfillWithNaN(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("early", "")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)
	for i := 0; i < 3; i++ {
		db.Tick()
		clk.advance(time.Second)
	}
	late := reg.Gauge("late", "")
	late.Set(7)
	db.Tick()
	res, err := db.Query("late", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 1 || pts[0].V != 7 {
		t.Fatalf("late series = %+v, want exactly one real point (history is no-data)", pts)
	}
	if math.IsNaN(pts[0].V) {
		t.Fatal("NaN leaked into query output")
	}
}
