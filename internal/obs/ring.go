package obs

import (
	"sync"
	"time"
)

// TraceStep is one stage of a violation's provenance history.
type TraceStep struct {
	Stage int       `json:"stage"`
	Label string    `json:"label"`
	Time  time.Time `json:"time"`
	Event string    `json:"event"`
}

// TraceRecord is one violation with as much provenance as the
// monitor's configured level allowed: Bindings at limited and above,
// History at full. Seq is the record's position in the total stream
// (assigned by the ring), so a reader can detect records it missed
// after wraparound.
type TraceRecord struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Property string            `json:"property"`
	Trigger  string            `json:"trigger"`
	Bindings map[string]string `json:"bindings,omitempty"`
	History  []TraceStep       `json:"history,omitempty"`
}

// Ring is a fixed-size ring buffer of recent violation trace records —
// the paper's F10 provenance made inspectable at run time without
// unbounded memory. Writers overwrite the oldest record once full.
// Record is mutex-guarded: violations are orders of magnitude rarer
// than events, so the lock is off the event hot path by construction;
// shards share one ring safely.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next uint64
}

// NewRing creates a ring holding up to capacity records (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]TraceRecord, 0, capacity)}
}

// Record appends one record, stamping its Seq and evicting the oldest
// record when full. Nil-safe: a nil ring drops the record.
func (r *Ring) Record(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[rec.Seq%uint64(cap(r.buf))] = rec
	}
	r.mu.Unlock()
}

// Total reports how many records were ever appended (>= len(Snapshot)).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot copies the retained records, oldest first.
func (r *Ring) Snapshot() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.next % uint64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}
