// Package obs is the switch-scope telemetry subsystem: atomic counters,
// gauges, power-of-two-bucket latency histograms, and a fixed-size ring
// buffer of recent violation trace records (ring.go). It exists so the
// monitor can explain what it is doing — shard occupancy, queue drops,
// per-property match rates, per-event latency — without perturbing the
// data plane: every hot-path recording operation (Counter.Inc,
// Gauge.Add, Histogram.Observe) is a handful of uncontended atomic
// instructions and allocates nothing. Instrument handles are resolved
// once at registration time (monitor construction, property install);
// the event path never touches the registry, its lock, or a map.
//
// The registry is get-or-create on (name, labels): registering the same
// series twice returns the same instrument. Shards exploit this to
// share one per-property counter family — every shard increments the
// same atomic word, so the registry's view is the cross-shard aggregate
// with no merge step.
//
// Export formats (Prometheus text, JSON, HTTP) live in obs/export so
// engines that only record never link the encoders.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value (occupancy, queue
// depth). Negative values are representable: deltas may transiently
// undershoot.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds v == 0). 65 covers the full uint64 range.
const histBuckets = 65

// Histogram is a power-of-two-bucket histogram of uint64 observations
// (latencies in nanoseconds, batch sizes). Observe is wait-free: one
// bit-length computation and three atomic adds, no allocation.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the per-bucket counts; index i counts observations
// with bit length i (upper bound 2^i - 1).
func (h *Histogram) Buckets() [histBuckets]uint64 {
	var out [histBuckets]uint64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketBound reports the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// HistQuantile reads quantile q (0..1) from power-of-two bucket counts
// as produced by Histogram.Buckets or SeriesSnapshot.Buckets (trailing
// buckets may be trimmed). The answer is the inclusive upper bound of
// the bucket where the cumulative count first reaches rank ceil(q*n) —
// a conservative (never under-reporting) estimate, exact to the bucket
// resolution. An empty histogram reports 0; observations that landed in
// the overflow bucket (index 64) report the full uint64 range bound.
func HistQuantile(buckets []uint64, q float64) uint64 {
	var total uint64
	for _, n := range buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(len(buckets) - 1)
}

// HistMaxBound reports the inclusive upper bound of the highest
// non-empty bucket — the histogram's observed maximum, rounded up to
// bucket resolution. Empty histograms report 0.
func HistMaxBound(buckets []uint64) uint64 {
	for i := len(buckets) - 1; i >= 0; i-- {
		if buckets[i] != 0 {
			return BucketBound(i)
		}
	}
	return 0
}

// metricKind discriminates the series types a family can hold.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one labeled instrument inside a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  int
	series map[string]*series
}

// Registry holds named metric families. Registration (Counter, Gauge,
// Histogram) is get-or-create keyed on (name, labels) and safe for
// concurrent use; it is intended for construction time, not the event
// path. Snapshot may be called concurrently with recording — values are
// read atomically, so a scrape sees a consistent-enough live view
// without stopping the engine.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	nextOrd  int
	// gen counts series registrations: it changes exactly when a new
	// series (or family) is created, so a sampler can cache instrument
	// pointers and rescan only when Gen moves (histdb's zero-alloc tick).
	gen atomic.Uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// canonLabels returns a sorted copy of labels and their canonical key.
func canonLabels(labels []Label) ([]Label, string) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return ls, b.String()
}

// lookup finds or creates the family and series for (name, labels).
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	ls, key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, order: r.nextOrd, series: map[string]*series{}}
		r.nextOrd++
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as two different kinds", name))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{}
		}
		f.series[key] = s
		r.gen.Add(1)
	}
	return s
}

// Gen reports the registry's series generation: it advances exactly
// when a new series is registered. Samplers cache instrument handles
// and rescan (ForEachSeries) only when Gen has moved, keeping the
// steady-state sample path allocation-free.
func (r *Registry) Gen() uint64 {
	if r == nil {
		return 0
	}
	return r.gen.Load()
}

// SeriesVisitor receives one live series during ForEachSeries. Exactly
// one of ctr, gauge, hist is non-nil, matching the family kind. The
// labels slice is the registry's canonical (sorted) copy and must not
// be mutated.
type SeriesVisitor func(name, help string, labels []Label, ctr *Counter, gauge *Gauge, hist *Histogram)

// ForEachSeries visits every registered series in deterministic order
// (families by registration order, series by canonical label key),
// handing the visitor live instrument pointers. It is intended for
// construction-time discovery — a sampler resolving handles once per
// Gen change — not the hot path; the visitor runs under the registry
// lock and must not register new series.
func (r *Registry) ForEachSeries(visit SeriesVisitor) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].order < fams[j].order })
	for _, f := range fams {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			visit(f.name, f.help, s.labels, s.ctr, s.gauge, s.hist)
		}
	}
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels).ctr
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels).gauge
}

// Histogram registers (or finds) a histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels).hist
}
