package obs

import (
	"sort"
	"strings"
)

// SeriesSnapshot is one labeled series captured by Snapshot.
type SeriesSnapshot struct {
	Labels []Label `json:"labels,omitempty"`
	// Value carries a counter's count or a gauge's level.
	Value int64 `json:"value"`
	// Count, Sum, and Buckets are histogram-only. Buckets[i] counts
	// observations with bit length i (upper bound BucketBound(i)).
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family captured by Snapshot.
type FamilySnapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time copy of a registry's metrics, ordered by
// registration: the unit the exporters encode and benchsweep diffs.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// kindName names a metricKind for snapshots and exporters.
func (k metricKind) kindName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Snapshot captures every registered series. Safe to call while other
// goroutines record; each value is read atomically.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].order < fams[j].order })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.kindName()}
		keys := make([]string, 0, len(f.series))
		r.mu.Lock()
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case kindCounter:
				ss.Value = int64(s.ctr.Value())
			case kindGauge:
				ss.Value = s.gauge.Value()
			case kindHistogram:
				b := s.hist.Buckets()
				ss.Count = s.hist.Count()
				ss.Sum = s.hist.Sum()
				// Trim trailing empty buckets; exporters re-derive bounds.
				hi := len(b)
				for hi > 0 && b[hi-1] == 0 {
					hi--
				}
				ss.Buckets = append([]uint64(nil), b[:hi]...)
			}
			fs.Series = append(fs.Series, ss)
		}
		r.mu.Unlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// SeriesKey renders "name{k1=v1,k2=v2}" (or bare name when unlabeled) —
// the flat key used by Counters and DiffCounters.
func SeriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counters flattens the snapshot's counter series into key -> value.
func (s Snapshot) Counters() map[string]uint64 {
	out := map[string]uint64{}
	for _, f := range s.Families {
		if f.Kind != "counter" {
			continue
		}
		for _, ser := range f.Series {
			out[SeriesKey(f.Name, ser.Labels)] = uint64(ser.Value)
		}
	}
	return out
}

// CounterValue finds one counter series by name and exact label set.
func (s Snapshot) CounterValue(name string, labels ...Label) uint64 {
	ls, _ := canonLabels(labels)
	return s.Counters()[SeriesKey(name, ls)]
}

// DiffCounters returns after-minus-before deltas for every counter
// series present in after, omitting zero deltas — the payload attached
// to BENCH_*.json entries.
func DiffCounters(before, after Snapshot) map[string]uint64 {
	b := before.Counters()
	out := map[string]uint64{}
	for k, v := range after.Counters() {
		if d := v - b[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}
