package export

import (
	"runtime"
	"runtime/debug"

	"switchmon/internal/obs"
)

// BuildInfo identifies a running binary: what was built, from which
// commit, with which toolchain. It backs /buildinfo and the
// switchmon_build_info metric, answering "what version is this daemon"
// without shelling into the host.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Path is the main package's import path.
	Path string `json:"path,omitempty"`
	// Version is the main module's version ("(devel)" for tree builds).
	Version string `json:"version,omitempty"`
	// VCSRevision, VCSTime, and VCSModified are the commit the binary
	// was built from, its author time, and whether the tree was dirty —
	// present only when the build had VCS metadata (not `go test`).
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified string `json:"vcs_modified,omitempty"`
}

// buildInfo assembles the binary's identity from the runtime. It
// degrades gracefully: binaries without embedded build info (or VCS
// stamps) report the fields the runtime does know.
func buildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Path = info.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value
		}
	}
	return bi
}

// registerBuildInfo publishes the constant-1 switchmon_build_info gauge
// whose labels carry the binary's identity — the Prometheus idiom for
// joining version metadata onto any other series.
func registerBuildInfo(reg *obs.Registry) {
	bi := buildInfo()
	rev := bi.VCSRevision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	reg.Gauge("switchmon_build_info",
		"Build identity; constant 1, metadata in the labels.",
		obs.L("go_version", bi.GoVersion),
		obs.L("path", bi.Path),
		obs.L("version", bi.Version),
		obs.L("revision", rev),
	).Set(1)
}
