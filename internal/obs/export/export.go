// Package export turns obs registry snapshots into wire formats and
// serves them over HTTP: Prometheus text exposition and JSON renderings
// of the metrics, a violation-ring dump with provenance, a health probe,
// and the standard pprof handlers — the switch-scope introspection
// endpoint behind switchmon's -metrics-addr flag.
//
// The exporters work on obs.Snapshot values, never on live instruments,
// so a scrape costs one snapshot (atomic loads under the registry lock)
// and zero coordination with the hot path.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
)

// PromText writes the snapshot in Prometheus text exposition format
// (version 0.0.4). Histograms are rendered as cumulative le-buckets at
// the power-of-two bounds obs.BucketBound defines, plus _sum and _count.
func PromText(w io.Writer, s obs.Snapshot) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, ser := range f.Series {
			if err := writeSeries(w, f, ser); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of family f.
func writeSeries(w io.Writer, f obs.FamilySnapshot, ser obs.SeriesSnapshot) error {
	if f.Kind != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Value)
		return err
	}
	cum := uint64(0)
	for i, n := range ser.Buckets {
		cum += n
		if n == 0 {
			continue // elide empty buckets; cumulative counts stay exact
		}
		le := strconv.FormatUint(obs.BucketBound(i), 10)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelBlock(ser.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelBlock(ser.Labels, "le", "+Inf"), ser.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Count)
	return err
}

// labelBlock renders {k="v",...}, appending the extra pair when set, or
// "" for an unlabeled series.
func labelBlock(labels []obs.Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WriteJSON writes the snapshot as one indented JSON document.
func WriteJSON(w io.Writer, s obs.Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// HealthFunc lets the engine report degradation through /healthz. It
// returns whether the engine is fully sound and, when it is not, a
// JSON-serializable detail (typically the soundness ledger's marks).
type HealthFunc func() (healthy bool, detail any)

// NewMux builds the introspection endpoint:
//
//	/metrics          Prometheus text (or JSON with ?format=json)
//	/healthz          liveness + soundness probe ("ok", or a JSON
//	                  degradation report when health says unsound)
//	/violations       JSON dump of the violation ring, oldest first
//	/trace            completed tracing spans as NDJSON, oldest first
//	/debug/pprof/...  standard runtime profiles
//
// reg, ring, health, and tr may each be nil; the handlers then serve
// empty documents (and /healthz is a plain liveness probe).
//
// /healthz answers 200 even when degraded: the process is alive and
// still monitoring, just with a documented soundness gap. Probes that
// want to alarm on degradation should parse the status field.
func NewMux(reg *obs.Registry, ring *obs.Ring, health HealthFunc, tr *tracer.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = PromText(w, snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health != nil {
			if healthy, detail := health(); !healthy {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(struct {
					Status string `json:"status"`
					Detail any    `json:"detail,omitempty"`
				}{Status: "degraded", Detail: detail})
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/violations", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var recs []obs.TraceRecord
		var total uint64
		if ring != nil {
			recs = ring.Snapshot()
			total = ring.Total()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total      uint64            `json:"total"`
			Retained   int               `json:"retained"`
			Violations []obs.TraceRecord `json:"violations"`
		}{Total: total, Retained: len(recs), Violations: recs})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Total", strconv.FormatUint(tr.Total(), 10))
		_ = tracer.WriteNDJSON(w, tr.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
