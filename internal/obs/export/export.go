// Package export turns obs registry snapshots into wire formats and
// serves them over HTTP: Prometheus text exposition and JSON renderings
// of the metrics, a violation-ring dump with provenance, a health probe,
// and the standard pprof handlers — the switch-scope introspection
// endpoint behind switchmon's -metrics-addr flag.
//
// The exporters work on obs.Snapshot values, never on live instruments,
// so a scrape costs one snapshot (atomic loads under the registry lock)
// and zero coordination with the hot path.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
	"switchmon/internal/obs/tracer"
)

// Error writes a 4xx/5xx response as the admin surface's uniform JSON
// error shape: {"error": "..."} with Content-Type application/json.
// Every endpoint (here, and the federation member/aggregator muxes)
// rejects through this helper, so clients never have to sniff between
// bare text and JSON bodies.
func Error(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: msg})
}

// Errorf is Error with fmt formatting.
func Errorf(w http.ResponseWriter, status int, format string, args ...any) {
	Error(w, status, fmt.Sprintf(format, args...))
}

// PromText writes the snapshot in Prometheus text exposition format
// (version 0.0.4). Histograms are rendered as cumulative le-buckets at
// the power-of-two bounds obs.BucketBound defines, plus _sum and _count.
func PromText(w io.Writer, s obs.Snapshot) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, ser := range f.Series {
			if err := writeSeries(w, f, ser); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of family f.
func writeSeries(w io.Writer, f obs.FamilySnapshot, ser obs.SeriesSnapshot) error {
	if f.Kind != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Value)
		return err
	}
	cum := uint64(0)
	for i, n := range ser.Buckets {
		cum += n
		if n == 0 {
			continue // elide empty buckets; cumulative counts stay exact
		}
		le := strconv.FormatUint(obs.BucketBound(i), 10)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelBlock(ser.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelBlock(ser.Labels, "le", "+Inf"), ser.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Count)
	return err
}

// labelBlock renders {k="v",...}, appending the extra pair when set, or
// "" for an unlabeled series.
func labelBlock(labels []obs.Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WriteJSON writes the snapshot as one indented JSON document.
func WriteJSON(w io.Writer, s obs.Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// HealthFunc lets the engine report degradation through /healthz. It
// returns whether the engine is fully sound and, when it is not, a
// JSON-serializable detail (typically the soundness ledger's marks).
type HealthFunc func() (healthy bool, detail any)

// StateFunc lets the engine expose its state-cost accounting through
// /state. It returns a JSON-serializable report (typically a
// statesize.Report, which both engines produce via StateReport); it is
// called per request, so the report is always live.
type StateFunc func() any

// PropertiesConfig wires the /properties admin endpoint to a live
// engine's lifecycle operations. Install receives the property's DSL
// source plus the tenant to attach; errors map to 400 (bad DSL or
// duplicate). Remove errors map to 404 (unknown property). List backs
// GET. Handlers serialize nothing themselves — the engine's own router
// lock is the serialization point.
type PropertiesConfig struct {
	List    func() any
	Install func(src, tenant string) error
	Remove  func(name string) error
}

// MuxConfig wires the introspection endpoint's data sources. Every
// field may be nil: the corresponding handlers then serve empty
// documents (and /healthz degrades to a plain liveness probe).
type MuxConfig struct {
	// Registry backs /metrics; when non-nil the mux also registers the
	// switchmon_build_info series and refreshes Go runtime health gauges
	// (goroutines, heap, GC pauses) before every snapshot.
	Registry *obs.Registry
	// Ring backs /violations.
	Ring *obs.Ring
	// Health backs /healthz.
	Health HealthFunc
	// Tracer backs /trace.
	Tracer *tracer.Tracer
	// State backs /state.
	State StateFunc
	// Properties, when non-nil, enables the /properties admin endpoint
	// (live install/remove).
	Properties *PropertiesConfig
	// History, when non-nil, backs /query (the histdb ring TSDB).
	History *histdb.DB
	// Alerts, when non-nil, backs /alerts and folds firing rules into
	// the /healthz degradation report.
	Alerts *slo.Engine
}

// sinceLimit parses the shared incremental-read query parameters:
// ?since=<seq> keeps only records with seq strictly greater, and
// ?limit=N keeps the newest N of what remains. Absent or unparseable
// values fall back to "everything". hasSince distinguishes ?since=0
// (skip seq 0 only) from no filter at all.
func sinceLimit(r *http.Request) (since uint64, hasSince bool, limit int) {
	q := r.URL.Query()
	limit = -1
	if v := q.Get("since"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			since, hasSince = n, true
		}
	}
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			limit = n
		}
	}
	return since, hasSince, limit
}

// HistoryHandler serves /query over a histdb ring:
//
//	/query?series=<glob>[|<glob>...]&since=<unix>&step=<dur>
//
// series is required ('*' and '?' wildcards, '|' separates
// alternatives); since restricts to samples strictly newer than the
// given unix time in seconds (fractions allowed); step downsamples to
// one point per step. Malformed parameters answer 400 with the uniform
// JSON error shape. The federation aggregator reuses this handler for
// its fleet-level ring.
func HistoryHandler(db *histdb.DB) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		pattern := q.Get("series")
		if pattern == "" {
			Error(w, http.StatusBadRequest, "missing ?series=<glob> (try series=*)")
			return
		}
		var sinceNS int64
		if v := q.Get("since"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				Errorf(w, http.StatusBadRequest, "bad since %q: want unix seconds", v)
				return
			}
			sinceNS = int64(f * float64(time.Second))
		}
		var step time.Duration
		if v := q.Get("step"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				Errorf(w, http.StatusBadRequest, "bad step %q: want a duration like 5s", v)
				return
			}
			step = d
		}
		res, err := db.Query(pattern, sinceNS, step)
		if err != nil {
			Errorf(w, http.StatusBadRequest, "bad series glob: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
	}
}

// alertsDoc is the /alerts response shape.
type alertsDoc struct {
	// Alerts is every rule's current status, in rule order.
	Alerts []slo.ActiveAlert `json:"alerts"`
	// TransitionsTotal counts transitions ever recorded; with the
	// retained ring's contiguous seqs, a gap proves eviction.
	TransitionsTotal uint64 `json:"transitions_total"`
	// Transitions is the retained transition ring, oldest first,
	// after the ?since/?limit filters.
	Transitions []slo.Transition `json:"transitions"`
}

// AlertsHandler serves /alerts over an SLO engine: the current status
// of every rule plus the ring of recorded transitions. ?since=<seq>
// keeps transitions with a strictly greater sequence number and
// ?limit=N the newest N, mirroring /violations; malformed values
// answer 400.
func AlertsHandler(e *slo.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var since uint64
		hasSince := false
		if v := q.Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				Errorf(w, http.StatusBadRequest, "bad since %q: want a transition seq", v)
				return
			}
			since, hasSince = n, true
		}
		limit := -1
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				Errorf(w, http.StatusBadRequest, "bad limit %q", v)
				return
			}
			limit = n
		}
		trs := e.Transitions()
		if hasSince {
			cut := 0
			for cut < len(trs) && trs[cut].Seq <= since {
				cut++
			}
			trs = trs[cut:]
		}
		if limit >= 0 && len(trs) > limit {
			trs = trs[len(trs)-limit:]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(alertsDoc{Alerts: e.Alerts(), TransitionsTotal: e.Total(), Transitions: trs})
	}
}

// NewMux builds the introspection endpoint:
//
//	/metrics          Prometheus text (or JSON with ?format=json),
//	                  including Go runtime health series
//	/healthz          liveness + soundness probe ("ok", or a JSON
//	                  degradation report when health says unsound)
//	/violations       JSON dump of the violation ring, oldest first
//	/trace            completed tracing spans as NDJSON, oldest first
//	/state            live state-cost accounting report as JSON
//	/query            windowed reads over the metrics history ring
//	                  (when configured; see HistoryHandler)
//	/alerts           SLO rule status + transition ring (when
//	                  configured; see AlertsHandler)
//	/properties       live property lifecycle admin (when configured):
//	                  GET lists, POST installs the body's DSL source
//	                  (?tenant= attaches a tenant), DELETE ?name= removes
//	/buildinfo        module, VCS, and toolchain identity as JSON
//	/debug/pprof/...  standard runtime profiles
//
// /violations and /trace accept ?since=<seq> (records with a strictly
// greater sequence number only) and ?limit=N (the newest N after the
// since filter), so pollers can read incrementally; records carry
// contiguous sequence numbers, so a page whose first record's seq
// exceeds since+1 proves records were missed (evicted or truncated).
//
// /healthz answers 200 even when degraded: the process is alive and
// still monitoring, just with a documented soundness gap (a non-empty
// ledger, or SLO rules firing when an alert engine is configured).
// Probes that want to alarm on degradation should parse the status
// field.
//
// When a registry is configured the mux also meters itself: every
// endpoint records switchmon_scrapes_total and a
// switchmon_scrape_duration_ns histogram labeled by endpoint, so the
// cost of being scraped shows up in /metrics — and therefore in the
// history ring and the SLO engine watching it.
func NewMux(cfg MuxConfig) *http.ServeMux {
	reg, ring, health, tr := cfg.Registry, cfg.Ring, cfg.Health, cfg.Tracer
	var rc *runtimeCollector
	if reg != nil {
		rc = newRuntimeCollector(reg)
		registerBuildInfo(reg)
	}
	mux := http.NewServeMux()
	handle := instrumented(mux, reg)
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		rc.collect()
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = PromText(w, snap)
	})
	handle("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		healthy, detail := true, any(nil)
		if health != nil {
			healthy, detail = health()
		}
		var firing []slo.ActiveAlert
		if cfg.Alerts != nil {
			firing = cfg.Alerts.Degraded()
		}
		if !healthy || len(firing) > 0 {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Status string            `json:"status"`
				Detail any               `json:"detail,omitempty"`
				Alerts []slo.ActiveAlert `json:"alerts,omitempty"`
			}{Status: "degraded", Detail: detail, Alerts: firing})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handle("/violations", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var recs []obs.TraceRecord
		var total uint64
		if ring != nil {
			recs = ring.Snapshot()
			total = ring.Total()
		}
		since, hasSince, limit := sinceLimit(r)
		if hasSince {
			cut := 0
			for cut < len(recs) && recs[cut].Seq <= since {
				cut++
			}
			recs = recs[cut:]
		}
		if limit >= 0 && len(recs) > limit {
			recs = recs[len(recs)-limit:]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total      uint64            `json:"total"`
			Retained   int               `json:"retained"`
			Violations []obs.TraceRecord `json:"violations"`
		}{Total: total, Retained: len(recs), Violations: recs})
	})
	handle("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Total", strconv.FormatUint(tr.Total(), 10))
		recs := tr.Snapshot()
		since, hasSince, limit := sinceLimit(r)
		if hasSince {
			cut := 0
			for cut < len(recs) && recs[cut].Seq <= since {
				cut++
			}
			recs = recs[cut:]
		}
		if limit >= 0 && len(recs) > limit {
			recs = recs[len(recs)-limit:]
		}
		_ = tracer.WriteNDJSON(w, recs)
	})
	handle("/state", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var rep any = struct{}{}
		if cfg.State != nil {
			rep = cfg.State()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	if cfg.History != nil {
		handle("/query", HistoryHandler(cfg.History))
	}
	if cfg.Alerts != nil {
		handle("/alerts", AlertsHandler(cfg.Alerts))
	}
	if pc := cfg.Properties; pc != nil {
		handle("/properties", func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				w.Header().Set("Content-Type", "application/json")
				var list any = struct{}{}
				if pc.List != nil {
					list = pc.List()
				}
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(list)
			case http.MethodPost:
				if pc.Install == nil {
					Error(w, http.StatusMethodNotAllowed, "install not supported")
					return
				}
				src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
				if err != nil {
					Error(w, http.StatusBadRequest, err.Error())
					return
				}
				if err := pc.Install(string(src), r.URL.Query().Get("tenant")); err != nil {
					Error(w, http.StatusBadRequest, err.Error())
					return
				}
				w.WriteHeader(http.StatusCreated)
				fmt.Fprintln(w, "installed")
			case http.MethodDelete:
				if pc.Remove == nil {
					Error(w, http.StatusMethodNotAllowed, "remove not supported")
					return
				}
				name := r.URL.Query().Get("name")
				if name == "" {
					Error(w, http.StatusBadRequest, "missing ?name=")
					return
				}
				if err := pc.Remove(name); err != nil {
					Error(w, http.StatusNotFound, err.Error())
					return
				}
				fmt.Fprintln(w, "removed")
			default:
				Error(w, http.StatusMethodNotAllowed, "GET, POST or DELETE")
			}
		})
	}
	handle("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildInfo())
	})
	handle("/debug/pprof/", pprof.Index)
	handle("/debug/pprof/cmdline", pprof.Cmdline)
	handle("/debug/pprof/profile", pprof.Profile)
	handle("/debug/pprof/symbol", pprof.Symbol)
	handle("/debug/pprof/trace", pprof.Trace)
	return mux
}

// instrumented returns a HandleFunc-shaped registrar that wraps every
// handler with per-endpoint self-metering: switchmon_scrapes_total and
// a switchmon_scrape_duration_ns histogram, both labeled by endpoint
// pattern. With a nil registry it degrades to plain registration.
func instrumented(mux *http.ServeMux, reg *obs.Registry) func(pattern string, h http.HandlerFunc) {
	return func(pattern string, h http.HandlerFunc) {
		if reg != nil {
			dur := reg.Histogram("switchmon_scrape_duration_ns",
				"Time serving one introspection request.", obs.L("endpoint", pattern))
			total := reg.Counter("switchmon_scrapes_total",
				"Introspection requests served.", obs.L("endpoint", pattern))
			inner := h
			h = func(w http.ResponseWriter, r *http.Request) {
				start := time.Now()
				inner(w, r)
				dur.Observe(uint64(time.Since(start)))
				total.Inc()
			}
		}
		mux.HandleFunc(pattern, h)
	}
}
