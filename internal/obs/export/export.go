// Package export turns obs registry snapshots into wire formats and
// serves them over HTTP: Prometheus text exposition and JSON renderings
// of the metrics, a violation-ring dump with provenance, a health probe,
// and the standard pprof handlers — the switch-scope introspection
// endpoint behind switchmon's -metrics-addr flag.
//
// The exporters work on obs.Snapshot values, never on live instruments,
// so a scrape costs one snapshot (atomic loads under the registry lock)
// and zero coordination with the hot path.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
)

// PromText writes the snapshot in Prometheus text exposition format
// (version 0.0.4). Histograms are rendered as cumulative le-buckets at
// the power-of-two bounds obs.BucketBound defines, plus _sum and _count.
func PromText(w io.Writer, s obs.Snapshot) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, ser := range f.Series {
			if err := writeSeries(w, f, ser); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of family f.
func writeSeries(w io.Writer, f obs.FamilySnapshot, ser obs.SeriesSnapshot) error {
	if f.Kind != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Value)
		return err
	}
	cum := uint64(0)
	for i, n := range ser.Buckets {
		cum += n
		if n == 0 {
			continue // elide empty buckets; cumulative counts stay exact
		}
		le := strconv.FormatUint(obs.BucketBound(i), 10)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelBlock(ser.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelBlock(ser.Labels, "le", "+Inf"), ser.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelBlock(ser.Labels, "", ""), ser.Count)
	return err
}

// labelBlock renders {k="v",...}, appending the extra pair when set, or
// "" for an unlabeled series.
func labelBlock(labels []obs.Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WriteJSON writes the snapshot as one indented JSON document.
func WriteJSON(w io.Writer, s obs.Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// HealthFunc lets the engine report degradation through /healthz. It
// returns whether the engine is fully sound and, when it is not, a
// JSON-serializable detail (typically the soundness ledger's marks).
type HealthFunc func() (healthy bool, detail any)

// StateFunc lets the engine expose its state-cost accounting through
// /state. It returns a JSON-serializable report (typically a
// statesize.Report, which both engines produce via StateReport); it is
// called per request, so the report is always live.
type StateFunc func() any

// PropertiesConfig wires the /properties admin endpoint to a live
// engine's lifecycle operations. Install receives the property's DSL
// source plus the tenant to attach; errors map to 400 (bad DSL or
// duplicate). Remove errors map to 404 (unknown property). List backs
// GET. Handlers serialize nothing themselves — the engine's own router
// lock is the serialization point.
type PropertiesConfig struct {
	List    func() any
	Install func(src, tenant string) error
	Remove  func(name string) error
}

// MuxConfig wires the introspection endpoint's data sources. Every
// field may be nil: the corresponding handlers then serve empty
// documents (and /healthz degrades to a plain liveness probe).
type MuxConfig struct {
	// Registry backs /metrics; when non-nil the mux also registers the
	// switchmon_build_info series and refreshes Go runtime health gauges
	// (goroutines, heap, GC pauses) before every snapshot.
	Registry *obs.Registry
	// Ring backs /violations.
	Ring *obs.Ring
	// Health backs /healthz.
	Health HealthFunc
	// Tracer backs /trace.
	Tracer *tracer.Tracer
	// State backs /state.
	State StateFunc
	// Properties, when non-nil, enables the /properties admin endpoint
	// (live install/remove).
	Properties *PropertiesConfig
}

// sinceLimit parses the shared incremental-read query parameters:
// ?since=<seq> keeps only records with seq strictly greater, and
// ?limit=N keeps the newest N of what remains. Absent or unparseable
// values fall back to "everything". hasSince distinguishes ?since=0
// (skip seq 0 only) from no filter at all.
func sinceLimit(r *http.Request) (since uint64, hasSince bool, limit int) {
	q := r.URL.Query()
	limit = -1
	if v := q.Get("since"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			since, hasSince = n, true
		}
	}
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			limit = n
		}
	}
	return since, hasSince, limit
}

// NewMux builds the introspection endpoint:
//
//	/metrics          Prometheus text (or JSON with ?format=json),
//	                  including Go runtime health series
//	/healthz          liveness + soundness probe ("ok", or a JSON
//	                  degradation report when health says unsound)
//	/violations       JSON dump of the violation ring, oldest first
//	/trace            completed tracing spans as NDJSON, oldest first
//	/state            live state-cost accounting report as JSON
//	/properties       live property lifecycle admin (when configured):
//	                  GET lists, POST installs the body's DSL source
//	                  (?tenant= attaches a tenant), DELETE ?name= removes
//	/buildinfo        module, VCS, and toolchain identity as JSON
//	/debug/pprof/...  standard runtime profiles
//
// /violations and /trace accept ?since=<seq> (records with a strictly
// greater sequence number only) and ?limit=N (the newest N after the
// since filter), so pollers can read incrementally; records carry
// contiguous sequence numbers, so a page whose first record's seq
// exceeds since+1 proves records were missed (evicted or truncated).
//
// /healthz answers 200 even when degraded: the process is alive and
// still monitoring, just with a documented soundness gap. Probes that
// want to alarm on degradation should parse the status field.
func NewMux(cfg MuxConfig) *http.ServeMux {
	reg, ring, health, tr := cfg.Registry, cfg.Ring, cfg.Health, cfg.Tracer
	var rc *runtimeCollector
	if reg != nil {
		rc = newRuntimeCollector(reg)
		registerBuildInfo(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		rc.collect()
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = PromText(w, snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health != nil {
			if healthy, detail := health(); !healthy {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(struct {
					Status string `json:"status"`
					Detail any    `json:"detail,omitempty"`
				}{Status: "degraded", Detail: detail})
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/violations", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var recs []obs.TraceRecord
		var total uint64
		if ring != nil {
			recs = ring.Snapshot()
			total = ring.Total()
		}
		since, hasSince, limit := sinceLimit(r)
		if hasSince {
			cut := 0
			for cut < len(recs) && recs[cut].Seq <= since {
				cut++
			}
			recs = recs[cut:]
		}
		if limit >= 0 && len(recs) > limit {
			recs = recs[len(recs)-limit:]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total      uint64            `json:"total"`
			Retained   int               `json:"retained"`
			Violations []obs.TraceRecord `json:"violations"`
		}{Total: total, Retained: len(recs), Violations: recs})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Total", strconv.FormatUint(tr.Total(), 10))
		recs := tr.Snapshot()
		since, hasSince, limit := sinceLimit(r)
		if hasSince {
			cut := 0
			for cut < len(recs) && recs[cut].Seq <= since {
				cut++
			}
			recs = recs[cut:]
		}
		if limit >= 0 && len(recs) > limit {
			recs = recs[len(recs)-limit:]
		}
		_ = tracer.WriteNDJSON(w, recs)
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var rep any = struct{}{}
		if cfg.State != nil {
			rep = cfg.State()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	if pc := cfg.Properties; pc != nil {
		mux.HandleFunc("/properties", func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				w.Header().Set("Content-Type", "application/json")
				var list any = struct{}{}
				if pc.List != nil {
					list = pc.List()
				}
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(list)
			case http.MethodPost:
				if pc.Install == nil {
					http.Error(w, "install not supported", http.StatusMethodNotAllowed)
					return
				}
				src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				if err := pc.Install(string(src), r.URL.Query().Get("tenant")); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				w.WriteHeader(http.StatusCreated)
				fmt.Fprintln(w, "installed")
			case http.MethodDelete:
				if pc.Remove == nil {
					http.Error(w, "remove not supported", http.StatusMethodNotAllowed)
					return
				}
				name := r.URL.Query().Get("name")
				if name == "" {
					http.Error(w, "missing ?name=", http.StatusBadRequest)
					return
				}
				if err := pc.Remove(name); err != nil {
					http.Error(w, err.Error(), http.StatusNotFound)
					return
				}
				fmt.Fprintln(w, "removed")
			default:
				http.Error(w, "GET, POST or DELETE", http.StatusMethodNotAllowed)
			}
		})
	}
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
