package export

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
)

func testRegistry() (*obs.Registry, *obs.Ring) {
	reg := obs.NewRegistry()
	reg.Counter("t_events_total", "Events.", obs.L("property", "fw")).Add(7)
	reg.Gauge("t_instances", "Live instances.").Set(-3)
	h := reg.Histogram("t_latency_ns", "Latency.")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(9) // bucket 4 (bits.Len64(9)=4)
	ring := obs.NewRing(4)
	ring.Record(obs.TraceRecord{
		Time:     time.Unix(100, 0).UTC(),
		Property: "fw",
		Trigger:  "timeout",
		Bindings: map[string]string{"src": "10.0.0.1"},
		History:  []obs.TraceStep{{Stage: 0, Label: "open"}},
	})
	return reg, ring
}

func TestPromTextFormat(t *testing.T) {
	reg, _ := testRegistry()
	var b strings.Builder
	if err := PromText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP t_events_total Events.",
		"# TYPE t_events_total counter",
		`t_events_total{property="fw"} 7`,
		"# TYPE t_instances gauge",
		"t_instances -3",
		"# TYPE t_latency_ns histogram",
		`t_latency_ns_bucket{le="0"} 1`,  // 1 obs of value 0
		`t_latency_ns_bucket{le="1"} 3`,  // cumulative: +2 obs of value 1
		`t_latency_ns_bucket{le="15"} 4`, // cumulative: +1 obs of value 9
		`t_latency_ns_bucket{le="+Inf"} 4`,
		"t_latency_ns_sum 11",
		"t_latency_ns_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("t_total", "h", obs.L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := PromText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `t_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg, ring := testRegistry()
	tr := tracer.New(tracer.Config{SampleN: 1})
	sp := tr.Sample(7, 42, 0)
	sp.StampAt(tracer.StageIngress, 100)
	sp.StampAt(tracer.StageVerdict, 350)
	tr.Finish(sp)
	srv := httptest.NewServer(NewMux(reg, ring, nil, tr))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}
	if body := get("/metrics"); !strings.Contains(body, `t_events_total{property="fw"} 7`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 3 {
		t.Fatalf("json families = %d, want 3", len(snap.Families))
	}

	var dump struct {
		Total      uint64            `json:"total"`
		Retained   int               `json:"retained"`
		Violations []obs.TraceRecord `json:"violations"`
	}
	if err := json.Unmarshal([]byte(get("/violations")), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 1 || dump.Retained != 1 || len(dump.Violations) != 1 {
		t.Fatalf("violations dump = %+v", dump)
	}
	v := dump.Violations[0]
	if v.Property != "fw" || v.Trigger != "timeout" || v.Bindings["src"] != "10.0.0.1" || len(v.History) != 1 {
		t.Fatalf("trace record lost fields: %+v", v)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}

	var rec tracer.SpanRecord
	if err := json.Unmarshal([]byte(get("/trace")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.DPID != 7 || rec.PacketID != 42 || rec.E2ENs != 250 {
		t.Fatalf("/trace record = %+v", rec)
	}
}

// /healthz with a HealthFunc: healthy stays the plain "ok" liveness
// answer; unsound flips to a JSON degradation report carrying the
// detail (the soundness ledger), still with status 200 — the process is
// alive, just degraded.
func TestMuxHealthzDegraded(t *testing.T) {
	healthy := true
	detail := []map[string]any{{"property": "firewall-basic", "reason": "quarantine"}}
	srv := httptest.NewServer(NewMux(nil, nil, func() (bool, any) {
		return healthy, detail
	}, nil))
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy /healthz = %d %q, want 200 ok", code, body)
	}

	healthy = false
	code, body := get()
	if code != 200 {
		t.Fatalf("degraded /healthz status = %d, want 200 (alive but degraded)", code)
	}
	var rep struct {
		Status string           `json:"status"`
		Detail []map[string]any `json:"detail"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("degraded /healthz is not JSON: %v\n%s", err, body)
	}
	if rep.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", rep.Status)
	}
	if len(rep.Detail) != 1 || rep.Detail[0]["property"] != "firewall-basic" || rep.Detail[0]["reason"] != "quarantine" {
		t.Fatalf("detail lost the ledger: %+v", rep.Detail)
	}
}

func TestMuxNilSources(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil, nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/violations", "/healthz", "/trace"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s with nil sources: status %d", path, resp.StatusCode)
		}
	}
}
