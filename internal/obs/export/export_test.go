package export

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
)

func testRegistry() (*obs.Registry, *obs.Ring) {
	reg := obs.NewRegistry()
	reg.Counter("t_events_total", "Events.", obs.L("property", "fw")).Add(7)
	reg.Gauge("t_instances", "Live instances.").Set(-3)
	h := reg.Histogram("t_latency_ns", "Latency.")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(9) // bucket 4 (bits.Len64(9)=4)
	ring := obs.NewRing(4)
	ring.Record(obs.TraceRecord{
		Time:     time.Unix(100, 0).UTC(),
		Property: "fw",
		Trigger:  "timeout",
		Bindings: map[string]string{"src": "10.0.0.1"},
		History:  []obs.TraceStep{{Stage: 0, Label: "open"}},
	})
	return reg, ring
}

func TestPromTextFormat(t *testing.T) {
	reg, _ := testRegistry()
	var b strings.Builder
	if err := PromText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP t_events_total Events.",
		"# TYPE t_events_total counter",
		`t_events_total{property="fw"} 7`,
		"# TYPE t_instances gauge",
		"t_instances -3",
		"# TYPE t_latency_ns histogram",
		`t_latency_ns_bucket{le="0"} 1`,  // 1 obs of value 0
		`t_latency_ns_bucket{le="1"} 3`,  // cumulative: +2 obs of value 1
		`t_latency_ns_bucket{le="15"} 4`, // cumulative: +1 obs of value 9
		`t_latency_ns_bucket{le="+Inf"} 4`,
		"t_latency_ns_sum 11",
		"t_latency_ns_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("t_total", "h", obs.L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := PromText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `t_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg, ring := testRegistry()
	tr := tracer.New(tracer.Config{SampleN: 1})
	sp := tr.Sample(7, 42, 0)
	sp.StampAt(tracer.StageIngress, 100)
	sp.StampAt(tracer.StageVerdict, 350)
	tr.Finish(sp)
	srv := httptest.NewServer(NewMux(MuxConfig{Registry: reg, Ring: ring, Tracer: tr}))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}
	if body := get("/metrics"); !strings.Contains(body, `t_events_total{property="fw"} 7`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	// The three test families plus the mux's own contributions: the
	// build-info series and the Go runtime health series.
	have := map[string]bool{}
	for _, f := range snap.Families {
		have[f.Name] = true
	}
	for _, want := range []string{
		"t_events_total", "t_instances", "t_latency_ns",
		"switchmon_build_info", "switchmon_go_goroutines",
		"switchmon_go_heap_alloc_bytes", "switchmon_go_gc_pause_ns",
	} {
		if !have[want] {
			t.Fatalf("json families missing %s: %v", want, have)
		}
	}

	var dump struct {
		Total      uint64            `json:"total"`
		Retained   int               `json:"retained"`
		Violations []obs.TraceRecord `json:"violations"`
	}
	if err := json.Unmarshal([]byte(get("/violations")), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 1 || dump.Retained != 1 || len(dump.Violations) != 1 {
		t.Fatalf("violations dump = %+v", dump)
	}
	v := dump.Violations[0]
	if v.Property != "fw" || v.Trigger != "timeout" || v.Bindings["src"] != "10.0.0.1" || len(v.History) != 1 {
		t.Fatalf("trace record lost fields: %+v", v)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}

	var rec tracer.SpanRecord
	if err := json.Unmarshal([]byte(get("/trace")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.DPID != 7 || rec.PacketID != 42 || rec.E2ENs != 250 {
		t.Fatalf("/trace record = %+v", rec)
	}
}

// /healthz with a HealthFunc: healthy stays the plain "ok" liveness
// answer; unsound flips to a JSON degradation report carrying the
// detail (the soundness ledger), still with status 200 — the process is
// alive, just degraded.
func TestMuxHealthzDegraded(t *testing.T) {
	healthy := true
	detail := []map[string]any{{"property": "firewall-basic", "reason": "quarantine"}}
	srv := httptest.NewServer(NewMux(MuxConfig{Health: func() (bool, any) {
		return healthy, detail
	}}))
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy /healthz = %d %q, want 200 ok", code, body)
	}

	healthy = false
	code, body := get()
	if code != 200 {
		t.Fatalf("degraded /healthz status = %d, want 200 (alive but degraded)", code)
	}
	var rep struct {
		Status string           `json:"status"`
		Detail []map[string]any `json:"detail"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("degraded /healthz is not JSON: %v\n%s", err, body)
	}
	if rep.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", rep.Status)
	}
	if len(rep.Detail) != 1 || rep.Detail[0]["property"] != "firewall-basic" || rep.Detail[0]["reason"] != "quarantine" {
		t.Fatalf("detail lost the ledger: %+v", rep.Detail)
	}
}

func TestMuxNilSources(t *testing.T) {
	srv := httptest.NewServer(NewMux(MuxConfig{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/violations", "/healthz", "/trace", "/state", "/buildinfo"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s with nil sources: status %d", path, resp.StatusCode)
		}
	}
}

// TestViolationsWraparoundGapDetectable is the incremental-read
// contract: a ring that wrapped has evicted records, and a poller
// resuming from ?since can prove it missed some because the retained
// sequence numbers are contiguous — the first returned seq exceeding
// since+1 is the gap signal.
func TestViolationsWraparoundGapDetectable(t *testing.T) {
	ring := obs.NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(obs.TraceRecord{Property: "fw", Trigger: "t"})
	}
	srv := httptest.NewServer(NewMux(MuxConfig{Ring: ring}))
	defer srv.Close()

	var dump struct {
		Total      uint64            `json:"total"`
		Retained   int               `json:"retained"`
		Violations []obs.TraceRecord `json:"violations"`
	}
	get := func(path string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		dump = struct {
			Total      uint64            `json:"total"`
			Retained   int               `json:"retained"`
			Violations []obs.TraceRecord `json:"violations"`
		}{}
		if err := json.Unmarshal(body, &dump); err != nil {
			t.Fatalf("GET %s: %v\n%s", path, err, body)
		}
	}

	// The ring retains seqs 6..9 of 10 recorded (0..9).
	get("/violations")
	if dump.Total != 10 || dump.Retained != 4 || dump.Violations[0].Seq != 6 {
		t.Fatalf("full dump = total %d retained %d first seq %d, want 10/4/6",
			dump.Total, dump.Retained, dump.Violations[0].Seq)
	}

	// A poller that last saw seq 2 asks for everything after it. Seqs
	// 3..5 are gone; the response must make that detectable.
	get("/violations?since=2")
	if dump.Retained != 4 {
		t.Fatalf("since=2 returned %d records, want the 4 retained", dump.Retained)
	}
	if first := dump.Violations[0].Seq; first <= 2+1 {
		t.Fatalf("first seq = %d; a wrapped ring must expose the gap (want > 3)", first)
	} else if first != 6 {
		t.Fatalf("first seq = %d, want 6", first)
	}

	// A poller that kept up sees a gapless continuation.
	get("/violations?since=7")
	if dump.Retained != 2 || dump.Violations[0].Seq != 8 || dump.Violations[1].Seq != 9 {
		t.Fatalf("since=7 = %+v, want seqs 8,9", dump.Violations)
	}

	// limit keeps the newest N; order stays oldest-first.
	get("/violations?limit=2")
	if dump.Retained != 2 || dump.Violations[0].Seq != 8 || dump.Violations[1].Seq != 9 {
		t.Fatalf("limit=2 = %+v, want seqs 8,9", dump.Violations)
	}
	get("/violations?since=6&limit=1")
	if dump.Retained != 1 || dump.Violations[0].Seq != 9 {
		t.Fatalf("since=6&limit=1 = %+v, want seq 9 only", dump.Violations)
	}
	get("/violations?limit=0")
	if dump.Retained != 0 || dump.Total != 10 {
		t.Fatalf("limit=0 = retained %d total %d, want 0 records but the true total", dump.Retained, dump.Total)
	}
}

// TestTraceWraparoundGapDetectable proves the same contract for /trace:
// span seqs survive ring eviction contiguously, so ?since reveals
// missed spans, and ?limit pages from the newest.
func TestTraceWraparoundGapDetectable(t *testing.T) {
	tr := tracer.New(tracer.Config{SampleN: 1, Ring: 4})
	for i := 0; i < 10; i++ {
		sp := tr.Sample(7, uint64(100+i), 0)
		sp.StampAt(tracer.StageIngress, int64(100+i))
		sp.StampAt(tracer.StageVerdict, int64(200+i))
		tr.Finish(sp)
	}
	srv := httptest.NewServer(NewMux(MuxConfig{Tracer: tr}))
	defer srv.Close()

	get := func(path string) []tracer.SpanRecord {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if got := resp.Header.Get("X-Trace-Total"); got != "10" {
			t.Fatalf("X-Trace-Total = %q, want 10", got)
		}
		var recs []tracer.SpanRecord
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			var r tracer.SpanRecord
			if err := dec.Decode(&r); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		return recs
	}

	full := get("/trace")
	if len(full) != 4 || full[0].Seq != 6 || full[3].Seq != 9 {
		t.Fatalf("full /trace = %+v, want seqs 6..9", full)
	}
	if full[0].PacketID != 106 {
		t.Fatalf("seq 6 carries packet %d, want 106 (seq assigned in finish order)", full[0].PacketID)
	}
	after := get("/trace?since=2")
	if len(after) != 4 || after[0].Seq != 6 {
		t.Fatalf("since=2 = %+v; first seq 6 > 3 is the detectable gap", after)
	}
	page := get("/trace?since=6&limit=2")
	if len(page) != 2 || page[0].Seq != 8 || page[1].Seq != 9 {
		t.Fatalf("since=6&limit=2 = %+v, want seqs 8,9", page)
	}
}

// TestStateEndpoint serves a StateFunc's report verbatim as JSON.
func TestStateEndpoint(t *testing.T) {
	calls := 0
	srv := httptest.NewServer(NewMux(MuxConfig{State: func() any {
		calls++
		return map[string]any{"shards": 4, "poll": calls}
	}}))
	defer srv.Close()
	for want := 1; want <= 2; want++ {
		resp, err := srv.Client().Get(srv.URL + "/state")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		var rep struct {
			Shards int `json:"shards"`
			Poll   int `json:"poll"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Shards != 4 || rep.Poll != want {
			t.Fatalf("poll %d: got %+v; the report must be produced per request", want, rep)
		}
	}
}

// TestBuildInfoEndpointAndMetric checks both build-identity surfaces:
// /buildinfo always knows the toolchain (even under `go test`, which
// embeds no VCS stamp), and a registry-backed mux carries the
// constant-1 switchmon_build_info series.
func TestBuildInfoEndpointAndMetric(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewMux(MuxConfig{Registry: reg}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi BuildInfo
	err = json.NewDecoder(resp.Body).Decode(&bi)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("go_version = %q", bi.GoVersion)
	}
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "switchmon_build_info{") {
		t.Fatalf("/metrics missing build info series:\n%s", body)
	}
}

// TestRuntimeMetricsRefreshed checks the runtime collector actually
// collects: after a scrape, the goroutine gauge is positive and the GC
// cycle counter matches a forced collection.
func TestRuntimeMetricsRefreshed(t *testing.T) {
	reg := obs.NewRegistry()
	rc := newRuntimeCollector(reg)
	runtime.GC()
	rc.collect()
	if v := rc.goroutines.Value(); v < 1 {
		t.Fatalf("goroutines = %d, want >= 1", v)
	}
	if v := rc.heapAlloc.Value(); v <= 0 {
		t.Fatalf("heap alloc = %d, want positive", v)
	}
	if rc.gcCycles.Value() == 0 {
		t.Fatal("gc cycles = 0 after a forced GC")
	}
	if rc.gcPauseNs.Count() == 0 {
		t.Fatal("no GC pauses observed after a forced GC")
	}
	// A second collect must not double-count old cycles.
	before := rc.gcCycles.Value()
	pauses := rc.gcPauseNs.Count()
	rc.collect()
	if rc.gcCycles.Value() != before || rc.gcPauseNs.Count() != pauses {
		t.Fatal("idle collect re-observed old GC cycles")
	}
	var nilRC *runtimeCollector
	nilRC.collect() // nil-safe: a mux without a registry has no collector
}
