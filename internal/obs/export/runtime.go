package export

import (
	"runtime"
	"sync"

	"switchmon/internal/obs"
)

// runtimeCollector refreshes Go runtime health series in a registry —
// goroutine count, heap occupancy, and the GC pause distribution — so a
// /metrics scrape reports process health alongside engine telemetry.
// Collection is pull-driven (once per scrape, not on a timer) and
// mutex-guarded so concurrent scrapes neither race nor double-count GC
// pauses.
type runtimeCollector struct {
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	heapObjs   *obs.Gauge
	gcCycles   *obs.Counter
	gcPauseNs  *obs.Histogram

	mu     sync.Mutex
	lastGC uint32 // NumGC high-water mark: pauses up to here are observed
}

func newRuntimeCollector(reg *obs.Registry) *runtimeCollector {
	return &runtimeCollector{
		goroutines: reg.Gauge("switchmon_go_goroutines", "Live goroutines at the last scrape."),
		heapAlloc:  reg.Gauge("switchmon_go_heap_alloc_bytes", "Heap bytes allocated and still in use."),
		heapSys:    reg.Gauge("switchmon_go_heap_sys_bytes", "Heap bytes obtained from the OS."),
		heapObjs:   reg.Gauge("switchmon_go_heap_objects", "Live heap objects."),
		gcCycles:   reg.Counter("switchmon_go_gc_cycles_total", "Completed GC cycles."),
		gcPauseNs:  reg.Histogram("switchmon_go_gc_pause_ns", "Stop-the-world GC pause durations, nanoseconds."),
	}
}

// collect refreshes the series from the runtime. Nil-safe (a mux with
// no registry has no collector).
func (rc *runtimeCollector) collect() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rc.goroutines.Set(int64(runtime.NumGoroutine()))
	rc.heapAlloc.Set(int64(ms.HeapAlloc))
	rc.heapSys.Set(int64(ms.HeapSys))
	rc.heapObjs.Set(int64(ms.HeapObjects))
	// PauseNs is a circular buffer of the last 256 pauses; the pause of
	// GC cycle i lives at PauseNs[(i+255)%256]. Observe each cycle since
	// the previous scrape exactly once, clamping to the buffer depth
	// when more than 256 cycles passed between scrapes.
	first := rc.lastGC + 1
	if ms.NumGC > 256 && first < ms.NumGC-255 {
		first = ms.NumGC - 255
	}
	for i := first; i <= ms.NumGC; i++ {
		rc.gcPauseNs.Observe(ms.PauseNs[(i+255)%256])
	}
	if ms.NumGC > rc.lastGC {
		rc.gcCycles.Add(uint64(ms.NumGC - rc.lastGC))
		rc.lastGC = ms.NumGC
	}
}
