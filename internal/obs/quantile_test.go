package obs

import "testing"

// TestHistQuantileEdges pins the quantile reader on the shapes histdb's
// derived series lean on: empty histograms, a single observation, and
// observations beyond the largest finite bucket bound (the overflow
// bucket at index 64).
func TestHistQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		b := h.Buckets()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := HistQuantile(b[:], q); got != 0 {
				t.Fatalf("HistQuantile(empty, %v) = %d, want 0", q, got)
			}
		}
		if got := HistMaxBound(b[:]); got != 0 {
			t.Fatalf("HistMaxBound(empty) = %d, want 0", got)
		}
		if got := HistQuantile(nil, 0.5); got != 0 {
			t.Fatalf("HistQuantile(nil, 0.5) = %d, want 0", got)
		}
	})

	t.Run("single-sample", func(t *testing.T) {
		var h Histogram
		h.Observe(100) // bits.Len64(100) == 7 -> bucket 7, bound 127
		b := h.Buckets()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := HistQuantile(b[:], q); got != 127 {
				t.Fatalf("HistQuantile(single, %v) = %d, want 127", q, got)
			}
		}
		if got := HistMaxBound(b[:]); got != 127 {
			t.Fatalf("HistMaxBound(single) = %d, want 127", got)
		}
	})

	t.Run("all-in-overflow-bucket", func(t *testing.T) {
		var h Histogram
		// 1<<63 has bit length 64: every observation lands in the last
		// bucket, whose bound is the full uint64 range.
		for i := 0; i < 10; i++ {
			h.Observe(1 << 63)
		}
		b := h.Buckets()
		want := ^uint64(0)
		for _, q := range []float64{0.5, 0.99, 1} {
			if got := HistQuantile(b[:], q); got != want {
				t.Fatalf("HistQuantile(overflow, %v) = %d, want %d", q, got, want)
			}
		}
		if got := HistMaxBound(b[:]); got != want {
			t.Fatalf("HistMaxBound(overflow) = %d, want %d", got, want)
		}
	})

	t.Run("trimmed-snapshot-buckets", func(t *testing.T) {
		// Snapshot trims trailing empty buckets; quantiles must agree
		// with the untrimmed array.
		var h Histogram
		for i := 0; i < 99; i++ {
			h.Observe(10) // bucket 4, bound 15
		}
		h.Observe(1000) // bucket 10, bound 1023
		full := h.Buckets()
		trimmed := full[:11]
		if got := HistQuantile(trimmed, 0.5); got != 15 {
			t.Fatalf("p50 = %d, want 15", got)
		}
		if got := HistQuantile(trimmed, 1); got != 1023 {
			t.Fatalf("p100 = %d, want 1023", got)
		}
		if got := HistQuantile(full[:], 0.5); got != 15 {
			t.Fatalf("untrimmed p50 = %d, want 15", got)
		}
	})
}

// TestRegistryGen pins the generation contract ForEachSeries consumers
// rely on: Gen moves exactly when a new series appears, and re-lookups
// of an existing series leave it unchanged.
func TestRegistryGen(t *testing.T) {
	r := NewRegistry()
	if r.Gen() != 0 {
		t.Fatalf("fresh registry Gen = %d, want 0", r.Gen())
	}
	c := r.Counter("a_total", "")
	g1 := r.Gen()
	if g1 == 0 {
		t.Fatal("Gen did not advance on first registration")
	}
	if again := r.Counter("a_total", ""); again != c {
		t.Fatal("re-registration returned a different instrument")
	}
	if r.Gen() != g1 {
		t.Fatalf("Gen moved on re-registration: %d -> %d", g1, r.Gen())
	}
	r.Gauge("b", "", L("x", "1"))
	if r.Gen() <= g1 {
		t.Fatalf("Gen did not advance on new series: %d", r.Gen())
	}

	var names []string
	r.ForEachSeries(func(name, _ string, labels []Label, ctr *Counter, gauge *Gauge, hist *Histogram) {
		names = append(names, SeriesKey(name, labels))
		switch name {
		case "a_total":
			if ctr == nil || gauge != nil || hist != nil {
				t.Errorf("a_total: wrong instrument pointers")
			}
		case "b":
			if gauge == nil {
				t.Errorf("b: gauge is nil")
			}
		}
	})
	if len(names) != 2 || names[0] != "a_total" || names[1] != "b{x=1}" {
		t.Fatalf("ForEachSeries order = %v, want [a_total b{x=1}]", names)
	}
}
