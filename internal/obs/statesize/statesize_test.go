package statesize

import (
	"fmt"
	"testing"

	"switchmon/internal/obs"
)

func TestAccountingTotalsAndShardBreakdown(t *testing.T) {
	tr := NewTracker(Config{Shards: 2})
	tr.Install(0, "p0")
	h0 := tr.Handle(0, 0)
	h1 := tr.Handle(0, 1)

	h0.File(11, 100)
	h0.File(12, 100)
	h1.File(13, 40)
	h0.ArmTimer()
	h1.ArmTimer()
	h1.DisarmTimer()
	h0.Unfile(100)
	tr.PoolPut(0)
	tr.PoolPut(0)
	tr.PoolGet(0)
	tr.PoolPut(1)

	r := tr.Report()
	if len(r.Properties) != 1 {
		t.Fatalf("properties = %d, want 1", len(r.Properties))
	}
	p := r.Properties[0]
	if p.Property != "p0" {
		t.Fatalf("property name = %q", p.Property)
	}
	if p.Live != 2 || p.Bytes != 140 || p.Timers != 1 || p.Filings != 3 {
		t.Fatalf("totals = live %d bytes %d timers %d filings %d, want 2/140/1/3",
			p.Live, p.Bytes, p.Timers, p.Filings)
	}
	if r.Pooled != 2 {
		t.Fatalf("pooled = %d, want 2", r.Pooled)
	}
	if len(r.PooledPerShard) != 2 || r.PooledPerShard[0] != 1 || r.PooledPerShard[1] != 1 {
		t.Fatalf("pooled per shard = %v", r.PooledPerShard)
	}
	if len(p.Shards) != 2 {
		t.Fatalf("shard breakdown = %v", p.Shards)
	}
	s0, s1 := p.Shards[0], p.Shards[1]
	if s0.Live != 1 || s0.Bytes != 100 || s0.Timers != 1 || s0.Filings != 2 {
		t.Fatalf("shard 0 = %+v", s0)
	}
	if s1.Live != 1 || s1.Bytes != 40 || s1.Timers != 0 || s1.Filings != 1 {
		t.Fatalf("shard 1 = %+v", s1)
	}
}

func TestSingleShardReportOmitsBreakdown(t *testing.T) {
	tr := NewTracker(Config{Shards: 1})
	tr.Install(0, "p0")
	tr.Handle(0, 0).File(1, 10)
	r := tr.Report()
	if r.PooledPerShard != nil {
		t.Fatalf("single-shard report has pooled breakdown %v", r.PooledPerShard)
	}
	if r.Properties[0].Shards != nil {
		t.Fatalf("single-shard report has shard breakdown %v", r.Properties[0].Shards)
	}
}

func TestSketchExactWhenUnderCapacity(t *testing.T) {
	tr := NewTracker(Config{Shards: 1, TopK: 16, SampleN: 1})
	tr.Install(0, "p0")
	h := tr.Handle(0, 0)
	// 8 distinct keys with distinct filing counts, interleaved.
	want := map[uint64]uint64{}
	for round := uint64(1); round <= 8; round++ {
		for key := uint64(100); key < 100+round; key++ {
			h.File(key, 1)
			want[key]++
		}
	}
	top := tr.Report().Properties[0].TopKeys
	if len(top) != 8 {
		t.Fatalf("topk entries = %d, want 8", len(top))
	}
	for i, kw := range top {
		if kw.MaxOver != 0 {
			t.Fatalf("entry %d key %s has error %d; under capacity all counts are exact", i, kw.Key, kw.MaxOver)
		}
		var key uint64
		if _, err := fmt.Sscanf(kw.Key, "0x%x", &key); err != nil {
			t.Fatalf("unparseable key %q: %v", kw.Key, err)
		}
		if want[key] != kw.Filings {
			t.Fatalf("key %#x: filings %d, want %d", key, kw.Filings, want[key])
		}
		if i > 0 && top[i-1].Filings < kw.Filings {
			t.Fatalf("topk not sorted descending at %d: %v", i, top)
		}
	}
}

// TestSketchSpaceSavingBound overloads a tiny sketch with more distinct
// keys than slots and checks the space-saving guarantee for every
// surviving key: filings-maxover <= true <= filings, and the globally
// heaviest key is reported heaviest.
func TestSketchSpaceSavingBound(t *testing.T) {
	const k = 4
	tr := NewTracker(Config{Shards: 1, TopK: k, SampleN: 1})
	tr.Install(0, "p0")
	h := tr.Handle(0, 0)
	// Skewed workload: key 1 files 64 times, key 2 files 32, ... key 12
	// files once — 12 distinct keys through 4 slots.
	truth := map[uint64]uint64{}
	for i := 0; i < 6; i++ {
		truth[uint64(i+1)] = 64 >> i
	}
	for i := 6; i < 12; i++ {
		truth[uint64(i+1)] = 1
	}
	// Interleave round-robin so light keys keep contending for slots.
	remaining := map[uint64]uint64{}
	for key, n := range truth {
		remaining[key] = n
	}
	for len(remaining) > 0 {
		for key := uint64(1); key <= 12; key++ {
			if remaining[key] > 0 {
				h.File(key, 1)
				remaining[key]--
				if remaining[key] == 0 {
					delete(remaining, key)
				}
			}
		}
	}
	top := tr.Report().Properties[0].TopKeys
	if len(top) != k {
		t.Fatalf("topk entries = %d, want %d", len(top), k)
	}
	for _, kw := range top {
		var key uint64
		fmt.Sscanf(kw.Key, "0x%x", &key)
		lo := kw.Filings - kw.MaxOver
		if tc := truth[key]; tc > kw.Filings || tc < lo {
			t.Fatalf("key %#x: bound [%d,%d] misses true count %d", key, lo, kw.Filings, tc)
		}
	}
	var heaviest uint64
	fmt.Sscanf(top[0].Key, "0x%x", &heaviest)
	if heaviest != 1 {
		t.Fatalf("heaviest reported key = %#x, want 1 (64 filings)", heaviest)
	}
}

func TestSketchMergesAcrossShards(t *testing.T) {
	tr := NewTracker(Config{Shards: 2, TopK: 8, SampleN: 1})
	tr.Install(0, "p0")
	h0, h1 := tr.Handle(0, 0), tr.Handle(0, 1)
	for i := 0; i < 5; i++ {
		h0.File(7, 1)
	}
	for i := 0; i < 3; i++ {
		h1.File(7, 1)
	}
	h1.File(9, 1)
	top := tr.Report().Properties[0].TopKeys
	if len(top) != 2 {
		t.Fatalf("topk = %v, want two keys", top)
	}
	if top[0].Key != fmt.Sprintf("%#016x", uint64(7)) || top[0].Filings != 8 {
		t.Fatalf("merged head = %+v, want key 7 with 8 filings", top[0])
	}
}

func TestSamplingScalesEstimates(t *testing.T) {
	const n = 8
	tr := NewTracker(Config{Shards: 1, TopK: 8, SampleN: n})
	tr.Install(0, "p0")
	h := tr.Handle(0, 0)
	// Find a key in the sampled class and one outside it.
	var sampled, skipped uint64
	for k := uint64(1); sampled == 0 || skipped == 0; k++ {
		if inClass(mix64(k), n) {
			if sampled == 0 {
				sampled = k
			}
		} else if skipped == 0 {
			skipped = k
		}
	}
	for i := 0; i < 10; i++ {
		h.File(sampled, 1)
		h.File(skipped, 1)
	}
	top := tr.Report().Properties[0].TopKeys
	if len(top) != 1 {
		t.Fatalf("topk = %v, want only the sampled key", top)
	}
	if top[0].Filings != 10*n {
		t.Fatalf("scaled estimate = %d, want %d", top[0].Filings, 10*n)
	}
	if got := tr.Report().Properties[0].Filings; got != 20 {
		t.Fatalf("filings counter = %d, want 20 (sampling affects the sketch only)", got)
	}
}

func TestWatermarkPressureAndHysteresis(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracker(Config{Shards: 1, Watermark: 8, Metrics: reg})
	tr.Install(0, "p0")
	h := tr.Handle(0, 0)
	for i := 0; i < 8; i++ {
		h.File(uint64(i), 1)
	}
	if tr.Report().Properties[0].Pressure {
		t.Fatal("pressure raised at watermark; should require exceeding it")
	}
	h.File(99, 1)
	p := tr.Report().Properties[0]
	if !p.Pressure || p.Crossings != 1 {
		t.Fatalf("after crossing: pressure=%v crossings=%d, want true/1", p.Pressure, p.Crossings)
	}
	// Dropping just below the watermark is not enough to clear...
	h.Unfile(1)
	h.Unfile(1)
	if !tr.Report().Properties[0].Pressure {
		t.Fatal("pressure cleared without hysteresis margin")
	}
	// ...but falling to 3/4 of it is (8 - 8>>2 = 6).
	h.Unfile(1)
	if p := tr.Report().Properties[0]; p.Pressure {
		t.Fatalf("pressure still set at live=%d, want cleared at <=6", p.Live)
	}
	// Re-crossing counts again.
	for i := 0; i < 3; i++ {
		h.File(uint64(200+i), 1)
	}
	if p := tr.Report().Properties[0]; !p.Pressure || p.Crossings != 2 {
		t.Fatalf("after re-crossing: pressure=%v crossings=%d, want true/2", p.Pressure, p.Crossings)
	}
	g := reg.Gauge("switchmon_state_pressure", "", obs.L("property", "p0"))
	if g.Value() != 1 {
		t.Fatalf("pressure gauge = %d, want 1", g.Value())
	}
	c := reg.Counter("switchmon_state_pressure_crossings_total", "", obs.L("property", "p0"))
	if c.Value() != 2 {
		t.Fatalf("crossings counter = %d, want 2", c.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracker
	tr.Install(0, "x")
	tr.PoolGet(0)
	tr.PoolPut(0)
	if h := tr.Handle(0, 0); h != nil {
		t.Fatal("nil tracker returned non-nil handle")
	}
	if r := tr.Report(); len(r.Properties) != 0 {
		t.Fatalf("nil tracker report = %+v", r)
	}
	var h *Handle
	h.File(1, 1)
	h.Unfile(1)
	h.ArmTimer()
	h.DisarmTimer()
	if h.Sketching() {
		t.Fatal("nil handle claims to sketch")
	}
}

func TestInstallIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracker(Config{Shards: 2, TopK: 4, Metrics: reg})
	tr.Install(0, "p0")
	h := tr.Handle(0, 0)
	h.File(1, 10)
	tr.Install(0, "p0") // second shard installing the same property
	if got := tr.Report().Properties[0].Live; got != 1 {
		t.Fatalf("re-install reset accounting: live = %d, want 1", got)
	}
}

func TestZeroKeyRemapped(t *testing.T) {
	tr := NewTracker(Config{Shards: 1, TopK: 4, SampleN: 1})
	tr.Install(0, "p0")
	h := tr.Handle(0, 0)
	h.File(0, 1)
	top := tr.Report().Properties[0].TopKeys
	if len(top) != 1 || top[0].Filings != 1 {
		t.Fatalf("zero key not counted: %v", top)
	}
}
