// Package statesize is the engine's state-cost accounting: how much
// monitor state each property holds right now, and which flow keys hold
// it. The paper's Table 2 compares switch designs by exactly this cost;
// this package makes it a live, queryable quantity instead of a
// post-mortem estimate — the /state introspection endpoint, the
// state_pressure early-warning series, and the per-tenant quota work the
// ROADMAP sketches all read from here.
//
// The design constraints mirror internal/obs: the hot path (instance
// filed, instance removed, timer armed, pool recycle) pays a few
// uncontended atomic adds and allocates nothing; snapshots (Report) are
// assembled from atomic loads on the observer's goroutine, so a /state
// poll never stops the engine. Heavy-hitter attribution uses a per-shard
// space-saving sketch over fixed atomic slots — single-writer per shard,
// lock-free readers — fed by the same deterministic 1-in-N identity-hash
// sampling idiom the tracer uses (murmur-finalized fastrange), so the
// sampled path costs one multiply-compare per filing.
package statesize

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"switchmon/internal/obs"
)

// Config parameterizes a Tracker.
type Config struct {
	// Shards is the number of engine shards feeding the tracker
	// (clamped to at least 1). Each shard gets its own counter cell and
	// sketch, so hot-path updates never contend across shards.
	Shards int
	// TopK is the per-property, per-shard heavy-hitter sketch capacity;
	// 0 disables the sketch (accounting still runs).
	TopK int
	// SampleN samples one filing in N into the sketch, decided by the
	// filing key's identity-hash class — deterministic, so the same flow
	// is always sampled or always skipped. 0 or 1 observes every filing.
	SampleN uint64
	// Watermark is the per-property live-instance count above which the
	// property is flagged under state pressure (a soundness-ledger-
	// adjacent warning that fires before any shed or quarantine does);
	// 0 disables watermarking.
	Watermark int64
	// Metrics, when non-nil, registers the tracker's gauge/counter
	// series; per-property series carry only the property label (plus
	// Labels), so shards sharing a registry aggregate per property.
	Metrics *obs.Registry
	// Labels are attached to every series the tracker registers.
	Labels []obs.Label
}

// counters is one accounting cell: the live/bytes/timers triple plus the
// cumulative filing count. All fields are atomically updated, so a cell
// can be read while its owning shard is mid-event.
type counters struct {
	live    atomic.Int64
	bytes   atomic.Int64
	timers  atomic.Int64
	filings atomic.Uint64
}

// prop is one property's accounting: engine-wide totals (every shard
// adds here too, so watermarks see the aggregate), per-shard cells for
// the breakdown, and per-shard sketches for heavy-hitter keys.
type prop struct {
	name      string
	tenant    string
	total     counters
	shards    []counters
	sketch    []sketch
	pressure  atomic.Uint32 // 0 = below watermark, 1 = over
	crossings atomic.Uint64 // lifetime 0->1 transitions

	// Telemetry handles (nil-safe no-ops when uninstrumented).
	liveG     *obs.Gauge
	bytesG    *obs.Gauge
	timersG   *obs.Gauge
	pressureG *obs.Gauge
	pressureC *obs.Counter
}

// Tracker is the engine-wide accounting store. One Tracker is shared by
// all shards of an engine (like the soundness Ledger); each shard
// resolves per-property Handles at install time and updates through
// them on its own goroutine. Report may be called from any goroutine at
// any time.
type Tracker struct {
	cfg  Config
	pool []atomic.Int64 // per-shard instance free-list population

	mu      sync.Mutex
	props   []*prop
	tenants map[string]*TenantCell
}

// NewTracker builds a tracker for an engine with cfg.Shards shards.
func NewTracker(cfg Config) *Tracker {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.TopK < 0 {
		cfg.TopK = 0
	}
	return &Tracker{cfg: cfg, pool: make([]atomic.Int64, cfg.Shards)}
}

// Install registers property idx under name (idempotent: every shard of
// a sharded engine installs the same property at the same index, and
// only the first call creates the entry). Indices must be installed in
// order, matching the engine's property indices.
func (t *Tracker) Install(idx int, name string) { t.InstallTenant(idx, name, "") }

// InstallTenant is Install carrying the property's tenant, so tenant
// accounting and /state attribution survive slot reuse across the
// property lifecycle. Reinstalling into a slot retired by Uninstall
// creates a fresh entry; calling it on a live slot is a no-op (the
// idempotence every shard of a sharded engine relies on).
func (t *Tracker) InstallTenant(idx int, name, tenant string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.props) <= idx {
		t.props = append(t.props, nil)
	}
	if t.props[idx] != nil {
		return
	}
	p := &prop{name: name, tenant: tenant, shards: make([]counters, t.cfg.Shards)}
	if k := t.cfg.TopK; k > 0 {
		p.sketch = make([]sketch, t.cfg.Shards)
		for i := range p.sketch {
			p.sketch[i].init(k)
		}
	}
	if reg := t.cfg.Metrics; reg != nil {
		l := append(append([]obs.Label(nil), t.cfg.Labels...), obs.L("property", name))
		p.liveG = reg.Gauge("switchmon_state_live_instances",
			"Live (filed) monitor instances held by the property.", l...)
		p.bytesG = reg.Gauge("switchmon_state_approx_bytes",
			"Approximate bytes of instance state (bindings, provenance, index keys) held by the property.", l...)
		p.timersG = reg.Gauge("switchmon_state_pending_timers",
			"Armed deadline timers (windows, negative-observation deadlines) held by the property.", l...)
		p.pressureG = reg.Gauge("switchmon_state_pressure",
			"1 while the property's live instance count exceeds the configured watermark.", l...)
		p.pressureC = reg.Counter("switchmon_state_pressure_crossings_total",
			"Watermark crossings: transitions from below to above the state watermark.", l...)
	}
	t.props[idx] = p
}

// Handle returns the hot-path accounting handle for (property idx,
// shard). Install must have run for idx first. Handles are resolved
// once at install time, never on the event path.
func (t *Tracker) Handle(idx, shard int) *Handle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	p := t.props[idx]
	t.mu.Unlock()
	h := &Handle{p: p, local: &p.shards[shard], sampleN: t.cfg.SampleN, watermark: t.cfg.Watermark}
	if p.sketch != nil {
		h.sk = &p.sketch[shard]
	}
	return h
}

// Uninstall retires property idx: whatever the slot's gauges still hold
// is returned (so a later reinstall under the same series name starts
// from zero — the registry is get-or-create by name+labels), pressure is
// cleared, and the slot is tombstoned for reuse by the next
// InstallTenant. Callers must have purged the property's instances
// first; under a sharded engine only the router calls this, once, after
// every shard has acked its purge. Nil-safe.
func (t *Tracker) Uninstall(idx int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx >= len(t.props) || t.props[idx] == nil {
		return
	}
	p := t.props[idx]
	p.liveG.Add(-p.total.live.Load())
	p.bytesG.Add(-p.total.bytes.Load())
	p.timersG.Add(-p.total.timers.Load())
	if p.pressure.Load() == 1 {
		p.pressureG.Set(0)
	}
	t.props[idx] = nil
}

// TenantCell is one tenant's shared accounting: live instances across
// all the tenant's properties (every shard adds here, like a property's
// total cell) and the cumulative count of instances or events its
// quotas rejected. All methods are nil-receiver safe — a nil cell is
// the untenanted case and costs callers one pointer test.
type TenantCell struct {
	name      string
	instances atomic.Int64
	shed      atomic.Uint64

	instG *obs.Gauge
	shedC *obs.Counter
}

// Instances reports the tenant's live instance population.
func (c *TenantCell) Instances() int64 {
	if c == nil {
		return 0
	}
	return c.instances.Load()
}

// ShedTotal reports how many instances/events the tenant's quotas shed.
func (c *TenantCell) ShedTotal() uint64 {
	if c == nil {
		return 0
	}
	return c.shed.Load()
}

// FileInstance records one instance filed under the tenant.
func (c *TenantCell) FileInstance() {
	if c == nil {
		return
	}
	c.instances.Add(1)
	c.instG.Add(1)
}

// UnfileInstance records one tenant instance unfiled.
func (c *TenantCell) UnfileInstance() {
	if c == nil {
		return
	}
	c.instances.Add(-1)
	c.instG.Add(-1)
}

// Shed records n instances or routed events rejected by the tenant's
// quota.
func (c *TenantCell) Shed(n uint64) {
	if c == nil {
		return
	}
	c.shed.Add(n)
	c.shedC.Add(n)
}

// Tenant returns the named tenant's accounting cell, creating it (and
// registering its switchmon_tenant_instances / switchmon_tenant_shed_total
// series) on first use. Cells are engine-lifetime: they survive the
// tenant's properties being removed, so the shed history reads
// continuously. Returns nil for the empty (default) tenant.
func (t *Tracker) Tenant(name string) *TenantCell {
	if t == nil || name == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tenants == nil {
		t.tenants = map[string]*TenantCell{}
	}
	if c := t.tenants[name]; c != nil {
		return c
	}
	c := &TenantCell{name: name}
	if reg := t.cfg.Metrics; reg != nil {
		l := append(append([]obs.Label(nil), t.cfg.Labels...), obs.L("tenant", name))
		c.instG = reg.Gauge("switchmon_tenant_instances",
			"Live monitor instances held by the tenant's properties.", l...)
		c.shedC = reg.Counter("switchmon_tenant_shed_total",
			"Instances and routed events rejected by the tenant's quotas.", l...)
	}
	t.tenants[name] = c
	return c
}

// PoolGet records an instance leaving the shard's free list (recycled
// into use). Nil-safe.
func (t *Tracker) PoolGet(shard int) {
	if t != nil {
		t.pool[shard].Add(-1)
	}
}

// PoolPut records a terminally dead instance returning to the shard's
// free list. Nil-safe.
func (t *Tracker) PoolPut(shard int) {
	if t != nil {
		t.pool[shard].Add(1)
	}
}

// Handle is the per-(property, shard) hot-path handle: direct pointers
// to the cells its updates touch, resolved once. All methods are
// nil-receiver safe (a nil handle is the accounting-disabled case) and
// allocation-free.
type Handle struct {
	p         *prop
	local     *counters
	sk        *sketch
	sampleN   uint64
	watermark int64
}

// File records an instance being filed: live population, approximate
// byte cost, the filing counter, the watermark check, and — when the
// filing key lands in the sampled 1-in-N class — the heavy-hitter
// sketch. key is the order-invariant hash of the instance's bindings
// (stable as the flow advances stages); bytes is the caller's estimate
// of the instance's resident cost, which the matching Unfile must
// return exactly.
func (h *Handle) File(key uint64, bytes int64) {
	if h == nil {
		return
	}
	h.local.live.Add(1)
	h.local.bytes.Add(bytes)
	h.local.filings.Add(1)
	p := h.p
	live := p.total.live.Add(1)
	p.total.bytes.Add(bytes)
	p.total.filings.Add(1)
	p.liveG.Add(1)
	p.bytesG.Add(bytes)
	if w := h.watermark; w > 0 && live > w && p.pressure.CompareAndSwap(0, 1) {
		p.crossings.Add(1)
		p.pressureC.Inc()
		p.pressureG.Set(1)
	}
	if h.sk != nil && (h.sampleN <= 1 || inClass(mix64(key), h.sampleN)) {
		h.sk.observe(key)
	}
}

// Unfile records an instance being unfiled (advanced, discharged,
// expired, evicted, suppressed, or purged), returning the bytes the
// File charged. Pressure clears with hysteresis: only once the live
// count falls to three quarters of the watermark, so a population
// oscillating at the line does not flap the flag.
func (h *Handle) Unfile(bytes int64) {
	if h == nil {
		return
	}
	h.local.live.Add(-1)
	h.local.bytes.Add(-bytes)
	p := h.p
	live := p.total.live.Add(-1)
	p.total.bytes.Add(-bytes)
	p.liveG.Add(-1)
	p.bytesG.Add(-bytes)
	if w := h.watermark; w > 0 && live <= w-(w>>2) && p.pressure.CompareAndSwap(1, 0) {
		p.pressureG.Set(0)
	}
}

// ArmTimer records a deadline timer being armed for the property.
func (h *Handle) ArmTimer() {
	if h == nil {
		return
	}
	h.local.timers.Add(1)
	h.p.total.timers.Add(1)
	h.p.timersG.Add(1)
}

// DisarmTimer records a deadline timer being stopped or fired.
func (h *Handle) DisarmTimer() {
	if h == nil {
		return
	}
	h.local.timers.Add(-1)
	h.p.total.timers.Add(-1)
	h.p.timersG.Add(-1)
}

// Sketching reports whether filings feed a heavy-hitter sketch (lets
// callers skip computing the filing key when they would not use it).
func (h *Handle) Sketching() bool { return h != nil && h.sk != nil }

// sketch is a space-saving heavy-hitter summary over fixed atomic
// slots. The owning shard is the only writer, so the lookup-or-min scan
// needs no lock; concurrent readers load slots atomically and tolerate
// an occasional torn (key, count, err) triple mid-replacement — a
// monitoring answer, not an audit record. A key's true (sampled) filing
// count c is bounded by count-err <= c <= count, the standard
// space-saving guarantee; err is at most total/K.
type sketch struct {
	keys   []atomic.Uint64
	counts []atomic.Uint64
	errs   []atomic.Uint64
}

func (s *sketch) init(k int) {
	s.keys = make([]atomic.Uint64, k)
	s.counts = make([]atomic.Uint64, k)
	s.errs = make([]atomic.Uint64, k)
}

// observe counts one filing of key. A present key increments in place;
// otherwise the minimum-count slot is evicted and the new key inherits
// its count as overestimation error (the space-saving replacement
// rule). Zero is the empty-slot sentinel, so a real zero key is nudged.
func (s *sketch) observe(key uint64) {
	if key == 0 {
		key = 1
	}
	minI, minC := 0, ^uint64(0)
	for i := range s.keys {
		if s.keys[i].Load() == key {
			s.counts[i].Add(1)
			return
		}
		if c := s.counts[i].Load(); c < minC {
			minC, minI = c, i
		}
	}
	s.keys[minI].Store(key)
	s.errs[minI].Store(minC)
	s.counts[minI].Store(minC + 1)
}

// mix64 is the murmur3 fmix64 finalizer (the tracer's sampling mixer):
// a bijection whose output bits depend on every input bit, so sampling
// classes stay uniform even for structured keys.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// inClass reports whether a mixed key lands in the 1-in-n sampled
// class, via fastrange (one multiply) instead of a modulo.
func inClass(mixed, n uint64) bool {
	hi, _ := bits.Mul64(mixed, n)
	return hi == 0
}

// KeyWeight is one heavy-hitter entry in a report: a filing key, its
// estimated filing count, and the space-saving overcount bound. When
// sampling is on (SampleN > 1) both numbers are scaled back up by N, so
// they estimate true filings; the true count c for an unsampled sketch
// satisfies Filings-MaxOver <= c <= Filings.
type KeyWeight struct {
	// Key is the filing key in hex (uint64 keys exceed JSON's safe
	// integer range, so the wire form is a string).
	Key string `json:"key"`
	// Filings is the estimated filing count attributed to the key.
	Filings uint64 `json:"filings"`
	// MaxOver bounds how much Filings may overcount.
	MaxOver uint64 `json:"max_overcount"`
}

// ShardState is one shard's slice of a property's accounting.
type ShardState struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Live counts instances filed on the shard.
	Live int64 `json:"live"`
	// Bytes is the shard's approximate resident instance state.
	Bytes int64 `json:"approx_bytes"`
	// Timers counts deadline timers armed on the shard.
	Timers int64 `json:"pending_timers"`
	// Filings counts filings ever performed on the shard.
	Filings uint64 `json:"filings"`
}

// PropState is one property's accounting snapshot.
type PropState struct {
	// Property is the property's name.
	Property string `json:"property"`
	// Slot is the property's engine slot index (the routing-mask bit).
	// Stable for the property's lifetime, reusable after removal — with
	// live install/remove it no longer equals the report position.
	Slot int `json:"slot"`
	// Tenant is the owning tenant ("" = default tenant).
	Tenant string `json:"tenant,omitempty"`
	// InstallEpoch is the engine lifecycle epoch the property was
	// installed in (cross-referenced from the ledger by the engine; 0
	// for the startup set).
	InstallEpoch uint64 `json:"install_epoch"`
	// Live counts filed instances engine-wide.
	Live int64 `json:"live"`
	// Bytes approximates the property's resident instance state.
	Bytes int64 `json:"approx_bytes"`
	// Timers counts armed deadline timers engine-wide.
	Timers int64 `json:"pending_timers"`
	// Filings counts filings ever performed engine-wide.
	Filings uint64 `json:"filings"`
	// Pressure reports whether the live count currently exceeds the
	// watermark; Crossings counts lifetime below-to-above transitions.
	Pressure  bool   `json:"pressure"`
	Crossings uint64 `json:"pressure_crossings"`
	// Quarantined and Unsound are cross-references filled in by the
	// engine (the tracker does not know the ledger): whether the
	// property is quarantined, and its soundness mark if any.
	Quarantined bool `json:"quarantined"`
	Unsound     any  `json:"unsound,omitempty"`
	// Shards is the per-shard breakdown (omitted for one-shard engines).
	Shards []ShardState `json:"per_shard,omitempty"`
	// TopKeys are the property's heaviest filing keys, merged across
	// shard sketches, heaviest first (nil when the sketch is off).
	TopKeys []KeyWeight `json:"top_keys,omitempty"`
}

// Report is a full accounting snapshot: engine shape, sketch and
// watermark configuration, the instance pool split, and per-property
// state. Assembled from atomic loads — per-field consistent, not a
// cross-field transaction, like every other live view in this system.
type Report struct {
	// Shards is the engine's shard count.
	Shards int `json:"shards"`
	// TopK, SampleN, and Watermark echo the tracker's configuration.
	TopK      int    `json:"topk"`
	SampleN   uint64 `json:"sample_n"`
	Watermark int64  `json:"watermark"`
	// Pooled counts instances parked on free lists (the pooled half of
	// the pooled-vs-live split); PooledPerShard is its breakdown.
	Pooled         int64   `json:"pooled_instances"`
	PooledPerShard []int64 `json:"pooled_per_shard,omitempty"`
	// Properties holds one entry per installed property, in install
	// order.
	Properties []PropState `json:"properties"`
	// Tenants holds one entry per tenant that ever had a quota cell
	// (sorted by name; empty when no properties carry tenants).
	Tenants []TenantState `json:"tenants,omitempty"`
}

// TenantState is one tenant's accounting snapshot.
type TenantState struct {
	Tenant string `json:"tenant"`
	// Instances is the tenant's live instance population.
	Instances int64 `json:"instances"`
	// Shed counts instances/events the tenant's quotas rejected.
	Shed uint64 `json:"shed"`
}

// Report assembles a snapshot. Safe from any goroutine, concurrently
// with hot-path updates; allocation is fine here (observer path).
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{}
	}
	r := Report{
		Shards: t.cfg.Shards, TopK: t.cfg.TopK,
		SampleN: t.cfg.SampleN, Watermark: t.cfg.Watermark,
	}
	if t.cfg.SampleN == 0 {
		r.SampleN = 1
	}
	for i := range t.pool {
		n := t.pool[i].Load()
		r.Pooled += n
		if t.cfg.Shards > 1 {
			r.PooledPerShard = append(r.PooledPerShard, n)
		}
	}
	t.mu.Lock()
	props := append([]*prop(nil), t.props...)
	var cells []*TenantCell
	for _, c := range t.tenants {
		cells = append(cells, c)
	}
	t.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool { return cells[i].name < cells[j].name })
	for _, c := range cells {
		r.Tenants = append(r.Tenants, TenantState{
			Tenant: c.name, Instances: c.Instances(), Shed: c.ShedTotal(),
		})
	}
	for idx, p := range props {
		if p == nil {
			continue
		}
		ps := PropState{
			Property:  p.name,
			Slot:      idx,
			Tenant:    p.tenant,
			Live:      p.total.live.Load(),
			Bytes:     p.total.bytes.Load(),
			Timers:    p.total.timers.Load(),
			Filings:   p.total.filings.Load(),
			Pressure:  p.pressure.Load() == 1,
			Crossings: p.crossings.Load(),
		}
		if t.cfg.Shards > 1 {
			for si := range p.shards {
				c := &p.shards[si]
				ps.Shards = append(ps.Shards, ShardState{
					Shard: si, Live: c.live.Load(), Bytes: c.bytes.Load(),
					Timers: c.timers.Load(), Filings: c.filings.Load(),
				})
			}
		}
		if p.sketch != nil {
			ps.TopKeys = mergeSketches(p.sketch, t.cfg.TopK, r.SampleN)
		}
		r.Properties = append(r.Properties, ps)
	}
	return r
}

// mergeSketches folds per-shard sketches into one top-K list: counts
// and error bounds for the same key sum across shards (each shard's
// bound holds independently), then the heaviest K survive. Estimates
// are scaled by the sample rate so they approximate true filings.
func mergeSketches(sks []sketch, k int, sampleN uint64) []KeyWeight {
	type cw struct{ count, err uint64 }
	merged := map[uint64]cw{}
	for si := range sks {
		s := &sks[si]
		for i := range s.keys {
			key := s.keys[i].Load()
			if key == 0 {
				continue
			}
			m := merged[key]
			m.count += s.counts[i].Load()
			m.err += s.errs[i].Load()
			merged[key] = m
		}
	}
	out := make([]KeyWeight, 0, len(merged))
	for key, m := range merged {
		out = append(out, KeyWeight{
			Key:     fmt.Sprintf("%#016x", key),
			Filings: m.count * sampleN,
			MaxOver: m.err * sampleN,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Filings != out[j].Filings {
			return out[i].Filings > out[j].Filings
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
