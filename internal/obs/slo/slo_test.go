package slo

import (
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/histdb"
)

// rig builds a registry + histdb + engine with compressed windows and
// a fake clock, returning a step function that advances one tick.
type rig struct {
	reg *obs.Registry
	db  *histdb.DB
	eng *Engine
	t   time.Time
}

func newRig(t *testing.T, rules []Rule) *rig {
	t.Helper()
	r := &rig{reg: obs.NewRegistry(), t: time.Unix(1_700_000_000, 0)}
	r.db = histdb.New(histdb.Config{
		Registry:    r.reg,
		SampleEvery: time.Second,
		Retention:   time.Minute,
		Now:         func() time.Time { return r.t },
	})
	r.eng = New(Config{DB: r.db, Rules: rules, Registry: r.reg})
	return r
}

// tick advances the clock one second and samples (which evaluates).
func (r *rig) tick() {
	r.t = r.t.Add(time.Second)
	r.db.Tick()
}

func state(t *testing.T, e *Engine, rule string) string {
	t.Helper()
	for _, a := range e.Alerts() {
		if a.Rule == rule {
			return a.State
		}
	}
	t.Fatalf("rule %q not reported", rule)
	return ""
}

func TestBurnRateStateMachine(t *testing.T) {
	// fast 2s, slow 6s, threshold 100 events/s.
	rules := []Rule{{Name: "shed", Series: "shed_total", Threshold: 100, Fast: 2 * time.Second, Slow: 6 * time.Second}}
	r := newRig(t, rules)
	ctr := r.reg.Counter("shed_total", "")

	// Quiet baseline: stays ok.
	for i := 0; i < 7; i++ {
		r.tick()
	}
	if got := state(t, r.eng, "shed"); got != "ok" {
		t.Fatalf("baseline state = %s, want ok", got)
	}

	// Burn hard: 1000/s. Fast window crosses immediately; the slow
	// window needs the burn to accumulate past the threshold average.
	var toCritical int
	for i := 1; i <= 10; i++ {
		ctr.Add(1000)
		r.tick()
		if state(t, r.eng, "shed") == "critical" {
			toCritical = i
			break
		}
	}
	if toCritical == 0 {
		t.Fatal("never reached critical under a 10x burn")
	}
	// 1000/s against a 100/s line over a 6-slot slow window: the slow
	// average crosses on the first or second burning tick.
	if toCritical > 2 {
		t.Fatalf("critical after %d ticks, want <= 2 (fast-burn detection)", toCritical)
	}

	// Stop burning: rates drop to 0, both windows drain below the
	// hysteresis band, and the rule resolves to ok.
	for i := 0; i < 8 && state(t, r.eng, "shed") != "ok"; i++ {
		r.tick()
	}
	if got := state(t, r.eng, "shed"); got != "ok" {
		t.Fatalf("state after drain = %s, want ok (resolved)", got)
	}

	trs := r.eng.Transitions()
	if len(trs) < 2 {
		t.Fatalf("transitions = %+v, want at least fire + resolve", trs)
	}
	last := trs[len(trs)-1]
	if last.To != "resolved" || last.From != "critical" {
		t.Fatalf("last transition = %+v, want critical->resolved", last)
	}
	for i, tr := range trs {
		if tr.Seq != uint64(i+1) {
			t.Fatalf("transition seqs not contiguous: %+v", trs)
		}
	}

	// Metrics mirror the machine.
	snap := r.reg.Snapshot()
	if got := snap.CounterValue("switchmon_alert_transitions_total"); got != uint64(len(trs)) {
		t.Fatalf("transitions counter = %d, want %d", got, len(trs))
	}
}

func TestWarningWithoutSustainedBurn(t *testing.T) {
	// A short spike heats the fast window only: warning, then resolve,
	// never critical.
	rules := []Rule{{Name: "lat", Series: "g", Threshold: 100, Fast: 2 * time.Second, Slow: 20 * time.Second}}
	r := newRig(t, rules)
	g := r.reg.Gauge("g", "")
	for i := 0; i < 10; i++ {
		r.tick()
	}
	g.Set(500)
	r.tick()
	if got := state(t, r.eng, "lat"); got != "warning" {
		t.Fatalf("spike state = %s, want warning (slow window still cold)", got)
	}
	g.Set(0)
	for i := 0; i < 4; i++ {
		r.tick()
	}
	if got := state(t, r.eng, "lat"); got != "ok" {
		t.Fatalf("post-spike state = %s, want ok", got)
	}
	for _, tr := range r.eng.Transitions() {
		if tr.To == "critical" {
			t.Fatalf("short spike must not page: %+v", tr)
		}
	}
}

func TestHysteresisHoldsThroughFlap(t *testing.T) {
	// Sitting just under the threshold after firing must not resolve:
	// the clear line is threshold*(1-hysteresis).
	rules := []Rule{{Name: "r", Series: "g", Threshold: 100, Fast: 2 * time.Second, Slow: 4 * time.Second}}
	r := newRig(t, rules)
	g := r.reg.Gauge("g", "")
	g.Set(200)
	for i := 0; i < 6; i++ {
		r.tick()
	}
	if got := state(t, r.eng, "r"); got != "critical" {
		t.Fatalf("sustained burn = %s, want critical", got)
	}
	g.Set(95) // under threshold, inside the 10% hysteresis band
	for i := 0; i < 8; i++ {
		r.tick()
	}
	if got := state(t, r.eng, "r"); got != "critical" {
		t.Fatalf("in-band state = %s, want critical held by hysteresis", got)
	}
	g.Set(50)
	for i := 0; i < 8; i++ {
		r.tick()
	}
	if got := state(t, r.eng, "r"); got != "ok" {
		t.Fatalf("below-band state = %s, want resolved", got)
	}
}

// TestNoCrossSeriesWindowMixing: one series hot in only the fast
// window while another is hot in only the slow window must not combine
// into a critical no single series earned.
func TestNoCrossSeriesWindowMixing(t *testing.T) {
	var snap obs.Snapshot
	now := time.Unix(1_700_000_000, 0)
	db := histdb.New(histdb.Config{
		Source:      func() obs.Snapshot { return snap },
		SampleEvery: time.Second,
		Retention:   time.Minute,
		Now:         func() time.Time { return now },
	})
	eng := New(Config{DB: db, Rules: []Rule{
		{Name: "r", Series: "g*", Threshold: 100, Fast: 2 * time.Second, Slow: 8 * time.Second},
	}})
	gauge := func(name string, v int64) obs.FamilySnapshot {
		return obs.FamilySnapshot{Name: name, Kind: "gauge", Series: []obs.SeriesSnapshot{{Value: v}}}
	}
	tick := func(families ...obs.FamilySnapshot) {
		now = now.Add(time.Second)
		snap = obs.Snapshot{Families: families}
		db.Tick()
	}
	for i := 0; i < 6; i++ { // t1..t6: both cold
		tick(gauge("ga", 0), gauge("gb", 0))
	}
	for i := 0; i < 2; i++ { // t7,t8: B bursts (fast hot, slow diluted)
		tick(gauge("ga", 0), gauge("gb", 300))
	}
	for i := 0; i < 2; i++ { // t9,t10: B vanishes — its slow window
		// (600/6 = 100) is now hot with a cold fast window — while A
		// bursts the other way (fast 300 hot, slow 600/8 = 75 cold).
		tick(gauge("ga", 300))
	}
	if got := state(t, eng, "r"); got != "warning" {
		t.Fatalf("state = %s, want warning (no single series earned critical)", got)
	}
	for _, tr := range eng.Transitions() {
		if tr.To == "critical" {
			t.Fatalf("cross-series window mixing paged: %+v", tr)
		}
	}
}

// TestHysteresisDisabled: negative Config.Hysteresis selects an exact-
// threshold clear band, so sitting just under the threshold resolves
// (where the 0.1 default would hold critical).
func TestHysteresisDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(1_700_000_000, 0)
	db := histdb.New(histdb.Config{Registry: reg, SampleEvery: time.Second, Retention: time.Minute, Now: func() time.Time { return now }})
	eng := New(Config{DB: db, Registry: reg, Hysteresis: -1, Rules: []Rule{
		{Name: "r", Series: "g", Threshold: 100, Fast: 2 * time.Second, Slow: 4 * time.Second},
	}})
	g := reg.Gauge("g", "")
	tick := func() { now = now.Add(time.Second); db.Tick() }
	g.Set(200)
	for i := 0; i < 6; i++ {
		tick()
	}
	if got := state(t, eng, "r"); got != "critical" {
		t.Fatalf("sustained burn = %s, want critical", got)
	}
	g.Set(95) // inside the default 10% band — but hysteresis is off
	for i := 0; i < 8; i++ {
		tick()
	}
	if got := state(t, eng, "r"); got != "ok" {
		t.Fatalf("state = %s, want resolved with hysteresis disabled", got)
	}
}

func TestNoMatchingSeriesRestsAtOK(t *testing.T) {
	r := newRig(t, BuiltinRules())
	for i := 0; i < 5; i++ {
		r.tick()
	}
	for _, a := range r.eng.Alerts() {
		if a.State != "ok" {
			t.Fatalf("rule %s = %s with no matching series, want ok", a.Rule, a.State)
		}
	}
	if d := r.eng.Degraded(); len(d) != 0 {
		t.Fatalf("Degraded = %+v, want empty", d)
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("shed:switchmon_*shed_events_total*:250:30s")
	if err != nil {
		t.Fatal(err)
	}
	want := Rule{Name: "shed", Series: "switchmon_*shed_events_total*", Threshold: 250, Fast: 30 * time.Second}
	if r != want {
		t.Fatalf("ParseRule = %+v, want %+v", r, want)
	}
	// Series globs may contain ':' — threshold/window split from the right.
	r, err = ParseRule("x:a:b:1.5:1m")
	if err != nil {
		t.Fatal(err)
	}
	if r.Series != "a:b" || r.Threshold != 1.5 || r.Fast != time.Minute {
		t.Fatalf("ParseRule with ':' in series = %+v", r)
	}
	for _, bad := range []string{"", "x", "x:y", "x:y:z", "x:y:nan?:1m", "x:y:5:bogus", ":s:1:1m"} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
	var rl RuleList
	if err := rl.Set("a:s:1:1m"); err != nil {
		t.Fatal(err)
	}
	if err := rl.Set("b:s2:2:30s"); err != nil {
		t.Fatal(err)
	}
	if len(rl) != 2 || rl[1].Name != "b" {
		t.Fatalf("RuleList = %+v", rl)
	}
}

// TestEvaluateSteadyStateZeroAlloc keeps the SLO engine inside the
// sampler's zero-alloc budget: with the engine attached to the tick
// hook, a steady-state tick (no transitions, no new series) must not
// allocate.
func TestEvaluateSteadyStateZeroAlloc(t *testing.T) {
	rules := append(BuiltinRules(), Rule{Name: "shed", Series: "switchmon_*shed_events_total*", Threshold: 1e12, Fast: 2 * time.Second})
	r := newRig(t, rules)
	ctr := r.reg.Counter("switchmon_ledger_shed_events_total", "")
	h := r.reg.Histogram("switchmon_trace_detection_latency_ns", "")
	r.tick() // discovery + glob resolution

	allocs := testing.AllocsPerRun(200, func() {
		ctr.Add(5)
		h.Observe(1000)
		r.tick()
	})
	if allocs != 0 {
		t.Fatalf("steady-state tick+evaluate allocates %v times, want 0", allocs)
	}
}

func TestAlertsActiveGauges(t *testing.T) {
	rules := []Rule{
		{Name: "a", Series: "g1", Threshold: 10, Fast: time.Second, Slow: 2 * time.Second},
		{Name: "b", Series: "g2", Threshold: 10, Fast: time.Second, Slow: 100 * time.Second},
	}
	r := newRig(t, rules)
	g1 := r.reg.Gauge("g1", "")
	r.reg.Gauge("g2", "").Set(50) // fast hot, slow (100s window) also hot once sampled... use distinct shapes below
	g1.Set(50)
	for i := 0; i < 4; i++ {
		r.tick()
	}
	snap := r.reg.Snapshot()
	var warn, crit int64
	for _, f := range snap.Families {
		if f.Name != "switchmon_alerts_active" {
			continue
		}
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Key == "severity" && l.Value == "warning" {
					warn = s.Value
				}
				if l.Key == "severity" && l.Value == "critical" {
					crit = s.Value
				}
			}
		}
	}
	if warn+crit != 2 {
		t.Fatalf("alerts_active warning=%d critical=%d, want 2 firing total", warn, crit)
	}
}
