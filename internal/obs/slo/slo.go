// Package slo is the monitor's judgment: a declarative rule engine
// that watches histdb series through multi-window burn rates and
// drives an ok → warning → critical → resolved alert state machine
// with hysteresis — the SRE-workbook shape (a fast window catches the
// page-worthy spike, a slow window proves it is sustained) applied to
// the monitor's own health series.
//
// Each rule names a '|'-separated glob over histdb keys, a threshold,
// and a fast window (the slow window defaults to 10x). Every sample
// tick the engine judges each matching series against both of its own
// windows and takes the worst single-series verdict — two different
// series each hot in only one window never combine into a critical no
// single series earned:
//
//   - both windows at or over threshold  -> critical
//   - exactly one window over            -> warning
//   - every series under threshold*(1-hysteresis) in both windows
//     -> resolved (ok)
//
// Critical is sticky: it clears only through the hysteresis band, so
// an alert cannot flap across the threshold line. Evaluation runs on
// histdb's tick hook — alert cadence follows sample cadence — and a
// steady-state evaluation (no transitions, no new series) performs no
// allocations, so the sampler's zero-alloc budget survives with the
// engine attached.
//
// Built-in rules cover the monitor's product metrics: detection-
// latency p99, unsound property count, shard/tenant shed rate,
// exporter wire-loss rate, and fleet reachability (the aggregation
// tier's members_unreachable gauge, so a member going dark is itself
// an alert). Custom rules arrive via the repeatable -slo flag
// (RuleList) as name:series:threshold:window.
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/histdb"
)

// State is one alert state.
type State uint8

// The alert states. Resolved is a transition edge, not a resting
// state: a rule that clears records a transition to "resolved" and
// rests at ok.
const (
	OK State = iota
	Warning
	Critical
)

// String names the state for JSON and dashboards.
func (s State) String() string {
	switch s {
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return "ok"
	}
}

// Rule is one SLO: a glob over histdb series keys, a threshold the
// windowed averages are compared against ("at or above is burning"),
// and the two burn windows.
type Rule struct {
	// Name identifies the rule in /alerts and metrics labels.
	Name string
	// Series is a '|'-separated glob list over histdb keys (see
	// histdb.MatchGlob). The worst matching series drives the rule.
	Series string
	// Threshold is the burn line, in the series' native unit
	// (events/sec for counter rates, the raw level for gauges,
	// nanoseconds for histogram quantile series).
	Threshold float64
	// Fast is the fast burn window (default 1m).
	Fast time.Duration
	// Slow is the slow burn window (default 10x Fast).
	Slow time.Duration
}

// normalize fills a rule's defaulted fields.
func (r Rule) normalize() Rule {
	if r.Fast <= 0 {
		r.Fast = time.Minute
	}
	if r.Slow <= 0 {
		r.Slow = 10 * r.Fast
	}
	return r
}

// ParseRule parses the -slo grammar: name:series:threshold:window.
// The series glob may itself contain ':' — the threshold and window
// are taken from the right. Window is the fast window; the slow
// window is 10x.
func ParseRule(s string) (Rule, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 4 {
		return Rule{}, fmt.Errorf("slo rule %q: want name:series:threshold:window", s)
	}
	name := parts[0]
	window := parts[len(parts)-1]
	threshold := parts[len(parts)-2]
	series := strings.Join(parts[1:len(parts)-2], ":")
	if name == "" || series == "" {
		return Rule{}, fmt.Errorf("slo rule %q: empty name or series", s)
	}
	th, err := strconv.ParseFloat(threshold, 64)
	if err != nil {
		return Rule{}, fmt.Errorf("slo rule %q: bad threshold %q: %v", s, threshold, err)
	}
	w, err := time.ParseDuration(window)
	if err != nil || w <= 0 {
		return Rule{}, fmt.Errorf("slo rule %q: bad window %q", s, window)
	}
	return Rule{Name: name, Series: series, Threshold: th, Fast: w}, nil
}

// RuleList is a repeatable -slo flag value: each occurrence parses one
// name:series:threshold:window rule.
type RuleList []Rule

// String renders the accumulated rules (flag.Value).
func (rl *RuleList) String() string {
	var b strings.Builder
	for i, r := range *rl {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s:%g:%s", r.Name, r.Series, r.Threshold, r.Fast)
	}
	return b.String()
}

// Set parses one rule and appends it (flag.Value).
func (rl *RuleList) Set(s string) error {
	r, err := ParseRule(s)
	if err != nil {
		return err
	}
	*rl = append(*rl, r)
	return nil
}

// BuiltinRules returns the default rule set covering the monitor's
// product metrics. The globs deliberately match both member-scope and
// fleet-scope (switchmon_fleet_*) names, so the same set serves the
// daemons and the aggregation tier; a rule whose glob matches nothing
// simply rests at ok.
func BuiltinRules() []Rule {
	return []Rule{
		// Detection latency: the paper's product metric. p99 of the
		// windowed end-to-end detection latency above 50ms is burning.
		{Name: "detection-latency-p99", Series: "switchmon_*trace_detection_latency_ns_p99*", Threshold: 50e6, Fast: time.Minute},
		// Soundness: any property unsound for a sustained window.
		{Name: "unsound-properties", Series: "switchmon_*monitor_unsound_properties*", Threshold: 1, Fast: time.Minute},
		// Shard-queue and tenant shedding: events dropped into the
		// ledger instead of evaluated.
		{Name: "shed-rate", Series: "switchmon_*shed_events_total*|switchmon_*tenant_shed_total*", Threshold: 100, Fast: time.Minute},
		// Exporter replay/loss: sequence gaps the collector had to
		// write off as wire loss.
		{Name: "wire-loss-rate", Series: "switchmon_*wire_loss_events_total*|switchmon_*collector_gap_events_total*", Threshold: 1, Fast: time.Minute},
		// Fleet reachability (aggregation tier): a member going dark is
		// itself an alert.
		{Name: "fleet-unreachable", Series: "switchmon_fleet_members_unreachable*", Threshold: 1, Fast: time.Minute},
	}
}

// Transition is one recorded state-machine edge, sequence-numbered
// contiguously like /violations records.
type Transition struct {
	// Seq is the contiguous transition sequence number, from 1.
	Seq uint64 `json:"seq"`
	// UnixNS stamps the evaluating tick.
	UnixNS int64 `json:"unix_ns"`
	// Rule names the rule that moved.
	Rule string `json:"rule"`
	// From and To are the edge ("resolved" is the To of a clear).
	From string `json:"from"`
	To   string `json:"to"`
	// Value is the fast-window average at the transition.
	Value float64 `json:"value"`
	// Threshold is the rule's burn line.
	Threshold float64 `json:"threshold"`
	// Series is the worst-offender key that drove the evaluation.
	Series string `json:"series,omitempty"`
}

// ActiveAlert is one rule's current status in /alerts.
type ActiveAlert struct {
	// Rule names the rule.
	Rule string `json:"rule"`
	// State is "ok", "warning", or "critical".
	State string `json:"state"`
	// SinceUnixNS stamps the last transition into the current state
	// (0 = never transitioned).
	SinceUnixNS int64 `json:"since_unix_ns,omitempty"`
	// Series is the worst-offender key at the last evaluation.
	Series string `json:"series,omitempty"`
	// Value and SlowValue are the fast/slow-window averages at the
	// last evaluation (0 when the window held no data).
	Value     float64 `json:"value"`
	SlowValue float64 `json:"slow_value"`
	// Samples counts fast-window samples behind Value.
	Samples int `json:"samples"`
	// Threshold is the rule's burn line.
	Threshold float64 `json:"threshold"`
	// FastNS and SlowNS are the burn windows in nanoseconds.
	FastNS int64 `json:"fast_window_ns"`
	SlowNS int64 `json:"slow_window_ns"`
}

// ruleState is one rule's live evaluation state.
type ruleState struct {
	rule    Rule
	handles []histdb.Handle
	state   State
	sinceNS int64
	// last evaluation, cached for Alerts():
	fastAvg  float64
	slowAvg  float64
	samples  int
	worst    histdb.Handle
	hasWorst bool

	stateGauge *obs.Gauge
}

// Config parameterizes an Engine.
type Config struct {
	// DB is the histdb the rules read; the engine registers itself on
	// its tick hook.
	DB *histdb.DB
	// Rules is the full rule set (typically BuiltinRules plus the
	// parsed -slo RuleList).
	Rules []Rule
	// Registry, when set, receives the switchmon_alerts_active and
	// switchmon_alert_state gauges and the transition counter.
	Registry *obs.Registry
	// TransitionRing bounds the retained transitions (default 256).
	TransitionRing int
	// Hysteresis widens the clear band: an alert resolves only when
	// both windows fall below threshold*(1-Hysteresis). 0 means the
	// default 0.1; negative disables hysteresis entirely (an exact-
	// threshold clear band).
	Hysteresis float64
}

// Engine evaluates the rule set on every histdb tick. All exported
// methods are safe for concurrent use.
type Engine struct {
	mu    sync.Mutex
	db    *histdb.DB
	rules []*ruleState
	hyst  float64

	tGen     uint64 // db track generation at last glob resolution
	resolved bool   // globs resolved at least once

	ring  []Transition
	head  int
	n     int
	total uint64

	warnGauge  *obs.Gauge
	critGauge  *obs.Gauge
	transTotal *obs.Counter
}

// New builds the engine and attaches it to the DB's tick hook, so
// evaluation runs after every sample with no second timer.
func New(cfg Config) *Engine {
	if cfg.TransitionRing <= 0 {
		cfg.TransitionRing = 256
	}
	switch {
	case cfg.Hysteresis < 0:
		cfg.Hysteresis = 0 // exact-threshold clear band
	case cfg.Hysteresis == 0 || cfg.Hysteresis >= 1:
		cfg.Hysteresis = 0.1
	}
	e := &Engine{
		db:   cfg.DB,
		hyst: cfg.Hysteresis,
		ring: make([]Transition, cfg.TransitionRing),
	}
	if reg := cfg.Registry; reg != nil {
		e.warnGauge = reg.Gauge("switchmon_alerts_active", "SLO rules currently firing, by severity.", obs.L("severity", "warning"))
		e.critGauge = reg.Gauge("switchmon_alerts_active", "SLO rules currently firing, by severity.", obs.L("severity", "critical"))
		e.transTotal = reg.Counter("switchmon_alert_transitions_total", "Alert state-machine transitions recorded.")
	}
	for _, r := range cfg.Rules {
		rs := &ruleState{rule: r.normalize()}
		if reg := cfg.Registry; reg != nil {
			rs.stateGauge = reg.Gauge("switchmon_alert_state", "Rule state: 0 ok, 1 warning, 2 critical.", obs.L("rule", r.Name))
		}
		e.rules = append(e.rules, rs)
	}
	if e.db != nil {
		e.db.OnTick(e.Evaluate)
	}
	return e
}

// Evaluate runs one evaluation pass against the DB at the given time.
// It is normally driven by the DB's tick hook; tests may call it
// directly. A pass with no transitions and no new series allocates
// nothing.
func (e *Engine) Evaluate(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g := e.db.TrackGen(); g != e.tGen || !e.resolved {
		for _, rs := range e.rules {
			rs.handles = e.db.ResolveGlob(rs.rule.Series)
		}
		e.tGen, e.resolved = g, true
	}
	nowNS := now.UnixNano()
	warn, crit := int64(0), int64(0)
	for _, rs := range e.rules {
		r := rs.rule
		clearLine := r.Threshold * (1 - e.hyst)
		// Judge each series against both of its own windows; the worst
		// single-series verdict drives the rule. Mixing the worst fast
		// average from one series with the worst slow average from
		// another would manufacture a critical no single series earned.
		worstSev := -1 // -1: no series had data in either window
		var worst histdb.Handle
		fastAvg, slowAvg := 0.0, 0.0
		fastN := 0
		allClear := true
		for _, h := range rs.handles {
			fa, fn := e.db.WindowAvg(h, r.Fast)
			sa, sn := e.db.WindowAvg(h, r.Slow)
			if fn == 0 && sn == 0 {
				continue
			}
			fastHot := fn > 0 && fa >= r.Threshold
			slowHot := sn > 0 && sa >= r.Threshold
			sev := 0
			if fastHot && slowHot {
				sev = 2
			} else if fastHot || slowHot {
				sev = 1
			}
			if (fn > 0 && fa >= clearLine) || (sn > 0 && sa >= clearLine) {
				allClear = false
			}
			if sev > worstSev || (sev == worstSev && fa > fastAvg) {
				worstSev = sev
				fastAvg, slowAvg, fastN = fa, sa, fn
				worst = h
			}
		}
		hasWorst := worstSev >= 0
		rs.fastAvg, rs.slowAvg, rs.samples = fastAvg, slowAvg, fastN
		rs.worst, rs.hasWorst = worst, hasWorst

		if !hasWorst {
			// No evidence either way: hold the current state.
			rs.apply(&warn, &crit)
			continue
		}
		next := rs.state
		to := ""
		switch rs.state {
		case OK:
			if worstSev == 2 {
				next, to = Critical, "critical"
			} else if worstSev == 1 {
				next, to = Warning, "warning"
			}
		case Warning:
			if worstSev == 2 {
				next, to = Critical, "critical"
			} else if allClear {
				next, to = OK, "resolved"
			}
		case Critical:
			// Sticky: clears only when every series with data is
			// through the hysteresis band in both windows.
			if allClear {
				next, to = OK, "resolved"
			}
		}
		if to != "" {
			e.record(Transition{
				UnixNS: nowNS, Rule: r.Name,
				From: rs.state.String(), To: to,
				Value: fastAvg, Threshold: r.Threshold, Series: worst.Key(),
			})
			rs.state = next
			rs.sinceNS = nowNS
		}
		rs.apply(&warn, &crit)
	}
	e.warnGauge.Set(warn)
	e.critGauge.Set(crit)
}

// apply folds the rule's state into the severity tallies and its
// state gauge. Called with e.mu held.
func (rs *ruleState) apply(warn, crit *int64) {
	switch rs.state {
	case Warning:
		*warn++
	case Critical:
		*crit++
	}
	rs.stateGauge.Set(int64(rs.state))
}

// record appends one transition to the ring. Called with e.mu held.
func (e *Engine) record(t Transition) {
	e.total++
	t.Seq = e.total
	e.ring[e.head] = t
	e.head = (e.head + 1) % len(e.ring)
	if e.n < len(e.ring) {
		e.n++
	}
	e.transTotal.Inc()
}

// Alerts reports every rule's current status, in rule order.
func (e *Engine) Alerts() []ActiveAlert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ActiveAlert, 0, len(e.rules))
	for _, rs := range e.rules {
		a := ActiveAlert{
			Rule:        rs.rule.Name,
			State:       rs.state.String(),
			SinceUnixNS: rs.sinceNS,
			Value:       rs.fastAvg,
			SlowValue:   rs.slowAvg,
			Samples:     rs.samples,
			Threshold:   rs.rule.Threshold,
			FastNS:      int64(rs.rule.Fast),
			SlowNS:      int64(rs.rule.Slow),
		}
		if rs.hasWorst {
			a.Series = rs.worst.Key()
		}
		out = append(out, a)
	}
	return out
}

// Degraded reports the rules currently in warning or critical — the
// /healthz detail contribution. Empty means fully clear.
func (e *Engine) Degraded() []ActiveAlert {
	all := e.Alerts()
	out := all[:0]
	for _, a := range all {
		if a.State != "ok" {
			out = append(out, a)
		}
	}
	return out
}

// Total reports the number of transitions ever recorded.
func (e *Engine) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// Transitions returns the retained transition ring, oldest first.
func (e *Engine) Transitions() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Transition, 0, e.n)
	for i := e.n; i >= 1; i-- {
		out = append(out, e.ring[(e.head-i+len(e.ring))%len(e.ring)])
	}
	return out
}
