package packet

import "fmt"

// Layer classifies how deep a parser must reach to produce a field. The
// paper's Table 1 uses the maximum required layer of each property as a
// complexity indicator; LayerMeta marks switch metadata (ports, drop
// decisions) that is not in the packet at all — the parsing gap Sec. 3.2
// highlights.
type Layer uint8

// Parsing depths.
const (
	LayerMeta Layer = 0 // switch metadata, not packet bytes
	Layer2    Layer = 2
	Layer3    Layer = 3
	Layer4    Layer = 4
	Layer7    Layer = 7
)

// String renders the conventional "L2".."L7" notation; metadata renders as
// "meta".
func (l Layer) String() string {
	if l == LayerMeta {
		return "meta"
	}
	return fmt.Sprintf("L%d", uint8(l))
}

// Field names a single matchable quantity — a packet header field or a
// piece of switch metadata. Properties are written in terms of Fields; the
// monitor extracts them from events (Feature 1).
type Field uint16

// The field registry. Grouped by required parsing layer.
const (
	FieldInvalid Field = iota

	// Switch metadata (LayerMeta).
	FieldInPort    // ingress port of an arrival
	FieldOutPort   // egress port of a departure
	FieldDropped   // 1 if the switch dropped the packet, else 0
	FieldMulticast // 1 if the departure went to more than one port
	FieldOOBKind   // out-of-band event kind (link down/up, ...)
	FieldOOBPort   // port an out-of-band event concerns
	FieldSwitchID  // datapath id of the switch that emitted the event

	// Layer 2.
	FieldEthSrc
	FieldEthDst
	FieldEthType

	// Layer 3.
	FieldARPOp
	FieldARPSenderMAC
	FieldARPSenderIP
	FieldARPTargetMAC
	FieldARPTargetIP
	FieldIPSrc
	FieldIPDst
	FieldIPProto
	FieldIPTTL

	// Layer 4.
	FieldSrcPort
	FieldDstPort
	FieldTCPFlags
	FieldTCPSyn
	FieldTCPFin
	FieldTCPRst
	FieldICMPType
	FieldICMPCode
	FieldICMPID
	FieldICMPSeq

	// Layer 7.
	FieldDHCPMsgType
	FieldDHCPClientMAC
	FieldDHCPYourIP
	FieldDHCPRequestedIP
	FieldDHCPServerID
	FieldDHCPLeaseSecs
	FieldDHCPXid
	FieldDNSID
	FieldDNSResponse
	FieldDNSQName
	FieldDNSAnswerIP
	FieldFTPCommand
	FieldFTPReplyCode
	FieldFTPDataIP
	FieldFTPDataPort

	numFields // sentinel
)

// fieldInfo is the registry metadata for one field.
type fieldInfo struct {
	name  string
	layer Layer
}

var fieldRegistry = [numFields]fieldInfo{
	FieldInPort:    {"in_port", LayerMeta},
	FieldOutPort:   {"out_port", LayerMeta},
	FieldDropped:   {"dropped", LayerMeta},
	FieldMulticast: {"multicast", LayerMeta},
	FieldOOBKind:   {"oob.kind", LayerMeta},
	FieldOOBPort:   {"oob.port", LayerMeta},
	FieldSwitchID:  {"switch.id", LayerMeta},

	FieldEthSrc:  {"eth.src", Layer2},
	FieldEthDst:  {"eth.dst", Layer2},
	FieldEthType: {"eth.type", Layer2},

	FieldARPOp:        {"arp.op", Layer3},
	FieldARPSenderMAC: {"arp.sender_mac", Layer3},
	FieldARPSenderIP:  {"arp.sender_ip", Layer3},
	FieldARPTargetMAC: {"arp.target_mac", Layer3},
	FieldARPTargetIP:  {"arp.target_ip", Layer3},
	FieldIPSrc:        {"ip.src", Layer3},
	FieldIPDst:        {"ip.dst", Layer3},
	FieldIPProto:      {"ip.proto", Layer3},
	FieldIPTTL:        {"ip.ttl", Layer3},

	FieldSrcPort:  {"l4.src_port", Layer4},
	FieldDstPort:  {"l4.dst_port", Layer4},
	FieldTCPFlags: {"tcp.flags", Layer4},
	FieldTCPSyn:   {"tcp.syn", Layer4},
	FieldTCPFin:   {"tcp.fin", Layer4},
	FieldTCPRst:   {"tcp.rst", Layer4},
	FieldICMPType: {"icmp.type", Layer4},
	FieldICMPCode: {"icmp.code", Layer4},
	FieldICMPID:   {"icmp.id", Layer4},
	FieldICMPSeq:  {"icmp.seq", Layer4},

	FieldDHCPMsgType:     {"dhcp.msg_type", Layer7},
	FieldDHCPClientMAC:   {"dhcp.client_mac", Layer7},
	FieldDHCPYourIP:      {"dhcp.your_ip", Layer7},
	FieldDHCPRequestedIP: {"dhcp.requested_ip", Layer7},
	FieldDHCPServerID:    {"dhcp.server_id", Layer7},
	FieldDHCPLeaseSecs:   {"dhcp.lease_secs", Layer7},
	FieldDHCPXid:         {"dhcp.xid", Layer7},
	FieldDNSID:           {"dns.id", Layer7},
	FieldDNSResponse:     {"dns.response", Layer7},
	FieldDNSQName:        {"dns.qname", Layer7},
	FieldDNSAnswerIP:     {"dns.answer_ip", Layer7},
	FieldFTPCommand:      {"ftp.command", Layer7},
	FieldFTPReplyCode:    {"ftp.reply_code", Layer7},
	FieldFTPDataIP:       {"ftp.data_ip", Layer7},
	FieldFTPDataPort:     {"ftp.data_port", Layer7},
}

// String returns the canonical dotted name used by the DSL.
func (f Field) String() string {
	if f < numFields && fieldRegistry[f].name != "" {
		return fieldRegistry[f].name
	}
	return fmt.Sprintf("Field(%d)", uint16(f))
}

// Layer reports the parsing depth required to extract f.
func (f Field) Layer() Layer {
	if f < numFields {
		return fieldRegistry[f].layer
	}
	return LayerMeta
}

// Valid reports whether f names a registered field.
func (f Field) Valid() bool {
	return f > FieldInvalid && f < numFields && fieldRegistry[f].name != ""
}

// FieldByName resolves a canonical dotted name to its Field.
func FieldByName(name string) (Field, bool) {
	f, ok := fieldsByName[name]
	return f, ok
}

// AllFields returns every registered field, in declaration order.
func AllFields() []Field {
	out := make([]Field, 0, int(numFields)-1)
	for f := Field(1); f < numFields; f++ {
		if fieldRegistry[f].name != "" {
			out = append(out, f)
		}
	}
	return out
}

var fieldsByName = func() map[string]Field {
	m := make(map[string]Field, numFields)
	for f := Field(1); f < numFields; f++ {
		if n := fieldRegistry[f].name; n != "" {
			m[n] = f
		}
	}
	return m
}()

// Value is a field value: either a number (addresses, ports, flags —
// everything that packs into 64 bits) or a string (names, FTP verbs).
// Value is comparable with ==, so it serves directly as a map key in the
// monitor's instance indexes.
type Value struct {
	str   string
	num   uint64
	isStr bool
}

// Num returns a numeric Value.
func Num(v uint64) Value { return Value{num: v} }

// Str returns a string Value.
func Str(s string) Value { return Value{str: s, isStr: true} }

// IsStr reports whether v holds a string.
func (v Value) IsStr() bool { return v.isStr }

// Uint64 returns the numeric content (0 for string values).
func (v Value) Uint64() uint64 { return v.num }

// Text returns the string content ("" for numeric values).
func (v Value) Text() string { return v.str }

// Less orders values: numerics before strings, then by content. Used for
// deterministic iteration in reports.
func (v Value) Less(o Value) bool {
	if v.isStr != o.isStr {
		return !v.isStr
	}
	if v.isStr {
		return v.str < o.str
	}
	return v.num < o.num
}

// String renders the value for reports.
func (v Value) String() string {
	if v.isStr {
		return fmt.Sprintf("%q", v.str)
	}
	return fmt.Sprintf("%d", v.num)
}

// boolValue converts a bool to the numeric 0/1 Value convention.
func boolValue(b bool) Value {
	if b {
		return Num(1)
	}
	return Num(0)
}

// Field extracts a packet field. The second result is false when the
// packet does not carry the field's layer (or the field is switch
// metadata, which lives on events, not packets).
func (p *Packet) Field(f Field) (Value, bool) {
	switch f {
	case FieldEthSrc:
		if p.Eth != nil {
			return Num(p.Eth.Src.Uint64()), true
		}
	case FieldEthDst:
		if p.Eth != nil {
			return Num(p.Eth.Dst.Uint64()), true
		}
	case FieldEthType:
		if p.Eth != nil {
			return Num(uint64(p.Eth.Type)), true
		}
	case FieldARPOp:
		if p.ARP != nil {
			return Num(uint64(p.ARP.Op)), true
		}
	case FieldARPSenderMAC:
		if p.ARP != nil {
			return Num(p.ARP.SenderMAC.Uint64()), true
		}
	case FieldARPSenderIP:
		if p.ARP != nil {
			return Num(p.ARP.SenderIP.Uint64()), true
		}
	case FieldARPTargetMAC:
		if p.ARP != nil {
			return Num(p.ARP.TargetMAC.Uint64()), true
		}
	case FieldARPTargetIP:
		if p.ARP != nil {
			return Num(p.ARP.TargetIP.Uint64()), true
		}
	case FieldIPSrc:
		if p.IPv4 != nil {
			return Num(p.IPv4.Src.Uint64()), true
		}
	case FieldIPDst:
		if p.IPv4 != nil {
			return Num(p.IPv4.Dst.Uint64()), true
		}
	case FieldIPProto:
		if p.IPv4 != nil {
			return Num(uint64(p.IPv4.Protocol)), true
		}
	case FieldIPTTL:
		if p.IPv4 != nil {
			return Num(uint64(p.IPv4.TTL)), true
		}
	case FieldSrcPort:
		switch {
		case p.TCP != nil:
			return Num(uint64(p.TCP.SrcPort)), true
		case p.UDP != nil:
			return Num(uint64(p.UDP.SrcPort)), true
		}
	case FieldDstPort:
		switch {
		case p.TCP != nil:
			return Num(uint64(p.TCP.DstPort)), true
		case p.UDP != nil:
			return Num(uint64(p.UDP.DstPort)), true
		}
	case FieldTCPFlags:
		if p.TCP != nil {
			return Num(uint64(p.TCP.Flags)), true
		}
	case FieldTCPSyn:
		if p.TCP != nil {
			return boolValue(p.TCP.Flags.Has(FlagSYN)), true
		}
	case FieldTCPFin:
		if p.TCP != nil {
			return boolValue(p.TCP.Flags.Has(FlagFIN)), true
		}
	case FieldTCPRst:
		if p.TCP != nil {
			return boolValue(p.TCP.Flags.Has(FlagRST)), true
		}
	case FieldICMPType:
		if p.ICMP != nil {
			return Num(uint64(p.ICMP.Type)), true
		}
	case FieldICMPCode:
		if p.ICMP != nil {
			return Num(uint64(p.ICMP.Code)), true
		}
	case FieldICMPID:
		if p.ICMP != nil {
			return Num(uint64(p.ICMP.ID)), true
		}
	case FieldICMPSeq:
		if p.ICMP != nil {
			return Num(uint64(p.ICMP.Seq)), true
		}
	case FieldDHCPMsgType:
		if p.DHCP != nil {
			return Num(uint64(p.DHCP.MsgType)), true
		}
	case FieldDHCPClientMAC:
		if p.DHCP != nil {
			return Num(p.DHCP.ClientMAC.Uint64()), true
		}
	case FieldDHCPYourIP:
		if p.DHCP != nil {
			return Num(p.DHCP.YourIP.Uint64()), true
		}
	case FieldDHCPRequestedIP:
		if p.DHCP != nil {
			return Num(p.DHCP.RequestedIP.Uint64()), true
		}
	case FieldDHCPServerID:
		if p.DHCP != nil {
			return Num(p.DHCP.ServerID.Uint64()), true
		}
	case FieldDHCPLeaseSecs:
		if p.DHCP != nil {
			return Num(uint64(p.DHCP.LeaseSecs)), true
		}
	case FieldDHCPXid:
		if p.DHCP != nil {
			return Num(uint64(p.DHCP.Xid)), true
		}
	case FieldDNSID:
		if p.DNS != nil {
			return Num(uint64(p.DNS.ID)), true
		}
	case FieldDNSResponse:
		if p.DNS != nil {
			return boolValue(p.DNS.Response), true
		}
	case FieldDNSQName:
		if p.DNS != nil {
			return Str(p.DNS.QName), true
		}
	case FieldDNSAnswerIP:
		if p.DNS != nil && len(p.DNS.Answers) > 0 {
			return Num(p.DNS.Answers[0].Addr.Uint64()), true
		}
	case FieldFTPCommand:
		if p.FTP != nil && p.FTP.Command != "" {
			return Str(p.FTP.Command), true
		}
	case FieldFTPReplyCode:
		if p.FTP != nil && p.FTP.ReplyCode != 0 {
			return Num(uint64(p.FTP.ReplyCode)), true
		}
	case FieldFTPDataIP:
		if p.FTP != nil && p.FTP.DataPort != 0 {
			return Num(p.FTP.DataIP.Uint64()), true
		}
	case FieldFTPDataPort:
		if p.FTP != nil && p.FTP.DataPort != 0 {
			return Num(uint64(p.FTP.DataPort)), true
		}
	}
	return Value{}, false
}
