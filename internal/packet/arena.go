package packet

// Arena is a slab allocator for decoded packets. One Arena per wire
// batch amortizes header allocation across every packet in the batch:
// each layer struct lands in a typed slab and payload bytes in one
// shared buffer, so a steady state of same-shaped batches decodes with
// zero per-packet heap allocations once the slabs have grown to the
// batch's working set.
//
// Packets decoded through an Arena stay valid until the owner calls
// Reset. That contract is safe for the monitoring engine because it
// retains only value copies of what it reads — field bindings are
// packet.Value copies and provenance records are Summary strings —
// never *Packet or layer pointers (see DESIGN.md §5g for the full
// borrow/release lifecycle).
//
// Slab growth is append-based: when a slab grows, future headers move
// to a new backing array while pointers already handed out keep the old
// one alive, so earlier packets in the batch are never invalidated.
type Arena struct {
	pkts  []Packet
	eths  []Ethernet
	arps  []ARP
	ips   []IPv4Header
	icmps []ICMPv4
	tcps  []TCP
	udps  []UDP
	bytes []byte
}

// Reset truncates every slab for reuse, keeping the final backing
// arrays. Every packet previously decoded through the arena becomes
// invalid.
func (a *Arena) Reset() {
	a.pkts = a.pkts[:0]
	a.eths = a.eths[:0]
	a.arps = a.arps[:0]
	a.ips = a.ips[:0]
	a.icmps = a.icmps[:0]
	a.tcps = a.tcps[:0]
	a.udps = a.udps[:0]
	a.bytes = a.bytes[:0]
}

// grab appends a zero value to the slab and returns its address. The
// zero-then-parse order means a half-parsed entry never leaks stale
// fields from a previous batch.
func grab[T any](s *[]T) *T {
	var zero T
	*s = append(*s, zero)
	return &(*s)[len(*s)-1]
}

// copyBytes copies src into the shared byte slab, returning a
// capacity-clamped view (so later appends cannot scribble on it).
func (a *Arena) copyBytes(src []byte) []byte {
	if len(src) == 0 {
		return nil
	}
	n := len(a.bytes)
	a.bytes = append(a.bytes, src...)
	return a.bytes[n:len(a.bytes):len(a.bytes)]
}

// Decode is packet.Decode into the arena. The L7 codecs (DHCP, DNS,
// FTP) still heap-allocate their layers — they are string-heavy, rare,
// and outside every hot path — but L2–L4 headers and payload bytes all
// come from the slabs.
func (a *Arena) Decode(data []byte) (*Packet, error) {
	p := grab(&a.pkts)
	eth := grab(&a.eths)
	rest, err := parseEthernet(eth, data)
	if err != nil {
		return nil, err
	}
	p.Eth = eth
	switch eth.Type {
	case EtherTypeARP:
		arp := grab(&a.arps)
		if err := parseARP(arp, rest); err != nil {
			return nil, err
		}
		p.ARP = arp
		return p, nil
	case EtherTypeIPv4:
		ip := grab(&a.ips)
		payload, err := parseIPv4(ip, rest)
		if err != nil {
			return nil, err
		}
		p.IPv4 = ip
		return p, a.decodeTransport(p, payload)
	default:
		p.Payload = a.copyBytes(rest)
		return p, nil
	}
}

func (a *Arena) decodeTransport(p *Packet, payload []byte) error {
	switch p.IPv4.Protocol {
	case ProtoICMP:
		icmp := grab(&a.icmps)
		if err := parseICMPv4(icmp, payload); err != nil {
			return err
		}
		icmp.Payload = a.copyBytes(icmp.Payload)
		p.ICMP = icmp
	case ProtoTCP:
		t := grab(&a.tcps)
		if err := parseTCP(t, payload, p.IPv4.Src, p.IPv4.Dst); err != nil {
			return err
		}
		t.Payload = a.copyBytes(t.Payload)
		p.TCP = t
		p.decodeApp(t.SrcPort, t.DstPort, t.Payload)
	case ProtoUDP:
		u := grab(&a.udps)
		if err := parseUDP(u, payload, p.IPv4.Src, p.IPv4.Dst); err != nil {
			return err
		}
		u.Payload = a.copyBytes(u.Payload)
		p.UDP = u
		p.decodeApp(u.SrcPort, u.DstPort, u.Payload)
	default:
		p.Payload = a.copyBytes(payload)
	}
	return nil
}
