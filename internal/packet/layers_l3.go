package packet

import (
	"encoding/binary"
	"fmt"
)

// IPProto identifies the transport protocol of an IPv4 packet.
type IPProto uint8

// IP protocol numbers used in this repository.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String names well-known protocols.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// IPv4Header is an IPv4 header without options (IHL=5). The monitor's
// properties never match on IP options, and the simulated network functions
// never emit them, so the codec rejects them explicitly rather than
// mis-parsing.
type IPv4Header struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Src      IPv4
	Dst      IPv4
}

const ipv4HeaderLen = 20

// encodeTo appends the header plus payload length bookkeeping; payloadLen
// is the length of everything after the header.
func (h *IPv4Header) encodeTo(b []byte, payloadLen int) []byte {
	start := len(b)
	b = append(b, 0x45, h.TOS) // version 4, IHL 5
	b = binary.BigEndian.AppendUint16(b, uint16(ipv4HeaderLen+payloadLen))
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b = append(b, h.TTL, byte(h.Protocol))
	b = append(b, 0, 0) // checksum, written below once the header is complete
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	sum := internetChecksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+10:start+12], sum)
	return b
}

// patchIPv4 rewrites an already-appended header's total length for the
// actual payload size and recomputes the header checksum in place. hdr
// is the 20-byte header region within the frame buffer.
func patchIPv4(hdr []byte, payloadLen int) {
	binary.BigEndian.PutUint16(hdr[2:4], uint16(ipv4HeaderLen+payloadLen))
	hdr[10], hdr[11] = 0, 0
	binary.BigEndian.PutUint16(hdr[10:12], internetChecksum(hdr[:ipv4HeaderLen], 0))
}

func decodeIPv4(data []byte) (*IPv4Header, []byte, error) {
	h := &IPv4Header{}
	payload, err := parseIPv4(h, data)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

func parseIPv4(h *IPv4Header, data []byte) ([]byte, error) {
	if len(data) < ipv4HeaderLen {
		return nil, fmt.Errorf("packet: IPv4 header too short (%d bytes)", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IP version %d, want 4", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl != ipv4HeaderLen {
		return nil, fmt.Errorf("packet: IPv4 options unsupported (IHL=%d bytes)", ihl)
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return nil, fmt.Errorf("packet: IPv4 total length %d outside frame of %d", total, len(data))
	}
	if sum := internetChecksum(data[:ihl], 0); sum != 0 {
		return nil, fmt.Errorf("packet: bad IPv4 header checksum")
	}
	*h = IPv4Header{
		TOS:      data[1],
		ID:       binary.BigEndian.Uint16(data[4:6]),
		Flags:    data[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(data[6:8]) & 0x1fff,
		TTL:      data[8],
		Protocol: IPProto(data[9]),
	}
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	return data[ihl:total], nil
}

// internetChecksum computes the RFC 1071 ones-complement checksum of data,
// folded with the initial partial sum. A data slice of odd length is padded
// with a zero byte. Verifying a message that embeds its own checksum yields
// zero.
func internetChecksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header used
// by TCP and UDP checksums.
func pseudoHeaderSum(src, dst IPv4, proto IPProto, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// ICMPType is the ICMPv4 message type.
type ICMPType uint8

// ICMPv4 message types used in this repository.
const (
	ICMPEchoReply   ICMPType = 0
	ICMPUnreachable ICMPType = 3
	ICMPEchoRequest ICMPType = 8
	ICMPTimeExceed  ICMPType = 11
)

// ICMPv4 is an ICMPv4 message. For echo messages, ID and Seq are
// meaningful; for others they carry the "rest of header" word.
type ICMPv4 struct {
	Type    ICMPType
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

const icmpHeaderLen = 8

func (m *ICMPv4) encodeTo(b []byte) []byte {
	start := len(b)
	b = append(b, byte(m.Type), m.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, m.ID)
	b = binary.BigEndian.AppendUint16(b, m.Seq)
	b = append(b, m.Payload...)
	sum := internetChecksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+2:start+4], sum)
	return b
}

func decodeICMPv4(data []byte) (*ICMPv4, error) {
	m := &ICMPv4{}
	if err := parseICMPv4(m, data); err != nil {
		return nil, err
	}
	if m.Payload != nil {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	return m, nil
}

// parseICMPv4 decodes into m, leaving Payload aliasing data — the
// caller copies it into whatever storage owns the packet.
func parseICMPv4(m *ICMPv4, data []byte) error {
	if len(data) < icmpHeaderLen {
		return fmt.Errorf("packet: ICMP message too short (%d bytes)", len(data))
	}
	if sum := internetChecksum(data, 0); sum != 0 {
		return fmt.Errorf("packet: bad ICMP checksum")
	}
	*m = ICMPv4{
		Type: ICMPType(data[0]),
		Code: data[1],
		ID:   binary.BigEndian.Uint16(data[4:6]),
		Seq:  binary.BigEndian.Uint16(data[6:8]),
	}
	if len(data) > icmpHeaderLen {
		m.Payload = data[icmpHeaderLen:]
	}
	return nil
}
