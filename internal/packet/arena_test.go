package packet

import (
	"reflect"
	"testing"
)

var (
	arenaMACA = MAC{0x02, 0, 0, 0, 0, 0x0a}
	arenaMACB = MAC{0x02, 0, 0, 0, 0, 0x0b}
	arenaIPA  = IPv4{10, 0, 0, 1}
	arenaIPB  = IPv4{10, 0, 0, 2}
)

// arenaSamples covers every L2–L4 shape the arena decoder handles,
// plus an L7 case that exercises the still-allocating app path.
func arenaSamples(t *testing.T) [][]byte {
	t.Helper()
	pkts := []*Packet{
		NewTCP(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 1234, 80, FlagSYN, nil),
		NewTCP(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 1234, 80, FlagPSH|FlagACK, []byte("hello")),
		NewUDP(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 4000, 5000, []byte{1, 2, 3}),
		NewICMPEcho(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 7, 1, false),
		NewARPRequest(arenaMACA, arenaIPA, arenaIPB),
		NewDNSQuery(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 5353, 42, "example.com"),
	}
	frames := make([][]byte, len(pkts))
	for i, p := range pkts {
		b, err := p.Encode()
		if err != nil {
			t.Fatalf("encode sample %d: %v", i, err)
		}
		frames[i] = b
	}
	return frames
}

// The arena decoder must be observationally identical to the heap
// decoder, including after the arena is Reset and reused.
func TestArenaDecodeMatchesHeapDecode(t *testing.T) {
	frames := arenaSamples(t)
	var a Arena
	for round := 0; round < 3; round++ {
		a.Reset()
		for i, frame := range frames {
			want, err := Decode(frame)
			if err != nil {
				t.Fatalf("round %d frame %d: heap decode: %v", round, i, err)
			}
			got, err := a.Decode(frame)
			if err != nil {
				t.Fatalf("round %d frame %d: arena decode: %v", round, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d frame %d: arena decode differs:\n got %s\nwant %s",
					round, i, got.Summary(), want.Summary())
			}
		}
	}
}

// A failed decode must fail identically through the arena, and not
// poison subsequent decodes.
func TestArenaDecodeErrors(t *testing.T) {
	var a Arena
	bad := [][]byte{
		{},               // too short for Ethernet
		make([]byte, 20), // EtherType 0: raw payload, no error — skip below
		func() []byte { // corrupted IPv4 checksum
			b, _ := NewTCP(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 1, 2, FlagSYN, nil).Encode()
			b[24] ^= 0xff
			return b
		}(),
	}
	for i, frame := range bad {
		_, heapErr := Decode(frame)
		_, arenaErr := a.Decode(frame)
		if (heapErr == nil) != (arenaErr == nil) {
			t.Fatalf("frame %d: heap err %v, arena err %v", i, heapErr, arenaErr)
		}
	}
	// The arena still decodes cleanly after errors.
	frame, _ := NewTCP(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 1, 2, FlagSYN, nil).Encode()
	if _, err := a.Decode(frame); err != nil {
		t.Fatalf("decode after errors: %v", err)
	}
}

// Steady state: decoding the same shape of packet through a reused
// arena must not allocate.
func TestArenaDecodeZeroAllocSteadyState(t *testing.T) {
	frame, err := NewTCP(arenaMACA, arenaMACB, arenaIPA, arenaIPB, 1234, 80, FlagACK, nil).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	// Warm the slabs.
	for i := 0; i < 4; i++ {
		a.Reset()
		if _, err := a.Decode(frame); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		a.Reset()
		if _, err := a.Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("arena decode allocates %.2f/packet in steady state, want 0", avg)
	}
}
