package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes used in this repository.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// String names well-known EtherTypes and prints others in hex.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Src  MAC
	Dst  MAC
	Type EtherType
}

const ethernetHeaderLen = 14

// encodeTo appends the wire form of the header to b.
func (e *Ethernet) encodeTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(e.Type))
}

// decodeEthernet parses an Ethernet II header, returning the header and its
// payload.
func decodeEthernet(data []byte) (*Ethernet, []byte, error) {
	e := &Ethernet{}
	rest, err := parseEthernet(e, data)
	if err != nil {
		return nil, nil, err
	}
	return e, rest, nil
}

// parseEthernet decodes an Ethernet II header into a caller-supplied
// struct, returning the payload. The parse/allocate split lets the
// arena decoder target slab-backed headers.
func parseEthernet(e *Ethernet, data []byte) ([]byte, error) {
	if len(data) < ethernetHeaderLen {
		return nil, fmt.Errorf("packet: ethernet frame too short (%d bytes)", len(data))
	}
	*e = Ethernet{Type: EtherType(binary.BigEndian.Uint16(data[12:14]))}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	return data[ethernetHeaderLen:], nil
}

// ARPOp is the ARP operation code.
type ARPOp uint16

// ARP operation codes.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// String names the operation.
func (op ARPOp) String() string {
	switch op {
	case ARPRequest:
		return "request"
	case ARPReply:
		return "reply"
	default:
		return fmt.Sprintf("ARPOp(%d)", uint16(op))
	}
}

// ARP is an ARP message for IPv4 over Ethernet (HTYPE=1, PTYPE=0x0800).
type ARP struct {
	Op        ARPOp
	SenderMAC MAC
	SenderIP  IPv4
	TargetMAC MAC
	TargetIP  IPv4
}

const arpLen = 28

func (a *ARP) encodeTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1)      // HTYPE: Ethernet
	b = binary.BigEndian.AppendUint16(b, 0x0800) // PTYPE: IPv4
	b = append(b, 6, 4)                          // HLEN, PLEN
	b = binary.BigEndian.AppendUint16(b, uint16(a.Op))
	b = append(b, a.SenderMAC[:]...)
	b = append(b, a.SenderIP[:]...)
	b = append(b, a.TargetMAC[:]...)
	b = append(b, a.TargetIP[:]...)
	return b
}

func decodeARP(data []byte) (*ARP, error) {
	a := &ARP{}
	if err := parseARP(a, data); err != nil {
		return nil, err
	}
	return a, nil
}

func parseARP(a *ARP, data []byte) error {
	if len(data) < arpLen {
		return fmt.Errorf("packet: ARP message too short (%d bytes)", len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return fmt.Errorf("packet: unsupported ARP hardware type %d", htype)
	}
	if ptype := binary.BigEndian.Uint16(data[2:4]); ptype != 0x0800 {
		return fmt.Errorf("packet: unsupported ARP protocol type 0x%04x", ptype)
	}
	if data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("packet: unsupported ARP address lengths %d/%d", data[4], data[5])
	}
	*a = ARP{Op: ARPOp(binary.BigEndian.Uint16(data[6:8]))}
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}
