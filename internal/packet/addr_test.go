package packet

import (
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("00:11:22:aa:bb:cc")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0x00, 0x11, 0x22, 0xaa, 0xbb, 0xcc}) {
		t.Fatalf("ParseMAC = %v", m)
	}
	if m.String() != "00:11:22:aa:bb:cc" {
		t.Fatalf("String = %q", m.String())
	}
	for _, bad := range []string{"", "00:11:22:aa:bb", "00:11:22:aa:bb:cc:dd", "zz:11:22:aa:bb:cc", "0:1"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", bad)
		}
	}
}

func TestMACUint64RoundTrip(t *testing.T) {
	f := func(b [6]byte) bool {
		m := MAC(b)
		return MACFromUint64(m.Uint64()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastMAC(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() {
		t.Fatal("BroadcastMAC.IsBroadcast() = false")
	}
	if MustMAC("00:00:00:00:00:01").IsBroadcast() {
		t.Fatal("unicast MAC reported as broadcast")
	}
}

func TestParseIPv4(t *testing.T) {
	ip, err := ParseIPv4("10.1.2.254")
	if err != nil {
		t.Fatal(err)
	}
	if ip != (IPv4{10, 1, 2, 254}) {
		t.Fatalf("ParseIPv4 = %v", ip)
	}
	if ip.String() != "10.1.2.254" {
		t.Fatalf("String = %q", ip.String())
	}
	for _, bad := range []string{"", "10.1.2", "10.1.2.3.4", "10.1.2.256", "a.b.c.d"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", bad)
		}
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4IsZero(t *testing.T) {
	if !(IPv4{}).IsZero() {
		t.Fatal("zero address not IsZero")
	}
	if MustIPv4("0.0.0.1").IsZero() {
		t.Fatal("0.0.0.1 reported zero")
	}
}

func TestMustPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MustMAC":  func() { MustMAC("bogus") },
		"MustIPv4": func() { MustIPv4("bogus") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on bogus input did not panic", name)
				}
			}()
			fn()
		}()
	}
}
