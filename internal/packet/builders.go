package packet

// Builders for the packet shapes the simulated network functions and
// workload generators emit. Each returns a ready-to-send *Packet with all
// layers populated; Encode will fill in lengths and checksums.

// NewTCP builds an Ethernet/IPv4/TCP packet.
func NewTCP(srcMAC, dstMAC MAC, src, dst IPv4, srcPort, dstPort uint16, flags TCPFlags, payload []byte) *Packet {
	return &Packet{
		Eth:  &Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4},
		IPv4: &IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst},
		TCP:  &TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags, Window: 65535, Payload: payload},
	}
}

// NewUDP builds an Ethernet/IPv4/UDP packet.
func NewUDP(srcMAC, dstMAC MAC, src, dst IPv4, srcPort, dstPort uint16, payload []byte) *Packet {
	return &Packet{
		Eth:  &Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4},
		IPv4: &IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP:  &UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload},
	}
}

// NewICMPEcho builds an ICMP echo request (or reply when reply is true).
func NewICMPEcho(srcMAC, dstMAC MAC, src, dst IPv4, id, seq uint16, reply bool) *Packet {
	typ := ICMPEchoRequest
	if reply {
		typ = ICMPEchoReply
	}
	return &Packet{
		Eth:  &Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4},
		IPv4: &IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: src, Dst: dst},
		ICMP: &ICMPv4{Type: typ, ID: id, Seq: seq},
	}
}

// NewARPRequest builds a broadcast ARP request asking who holds targetIP.
func NewARPRequest(senderMAC MAC, senderIP, targetIP IPv4) *Packet {
	return &Packet{
		Eth: &Ethernet{Src: senderMAC, Dst: BroadcastMAC, Type: EtherTypeARP},
		ARP: &ARP{
			Op:        ARPRequest,
			SenderMAC: senderMAC,
			SenderIP:  senderIP,
			TargetIP:  targetIP,
		},
	}
}

// NewARPReply builds a unicast ARP reply answering a request.
func NewARPReply(senderMAC MAC, senderIP IPv4, targetMAC MAC, targetIP IPv4) *Packet {
	return &Packet{
		Eth: &Ethernet{Src: senderMAC, Dst: targetMAC, Type: EtherTypeARP},
		ARP: &ARP{
			Op:        ARPReply,
			SenderMAC: senderMAC,
			SenderIP:  senderIP,
			TargetMAC: targetMAC,
			TargetIP:  targetIP,
		},
	}
}

// NewDHCP builds a UDP-encapsulated DHCP message. Client messages go
// 68->67 from the client MAC (broadcast at L2/L3 when the client has no
// address yet); server messages go 67->68.
func NewDHCP(srcMAC, dstMAC MAC, src, dst IPv4, msg *DHCPv4) *Packet {
	sport, dport := uint16(PortDHCPClient), uint16(PortDHCPServer)
	if msg.Op == DHCPBootReply {
		sport, dport = PortDHCPServer, PortDHCPClient
	}
	return &Packet{
		Eth:  &Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4},
		IPv4: &IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP:  &UDP{SrcPort: sport, DstPort: dport},
		DHCP: msg,
	}
}

// NewDNSQuery builds a DNS query for an A record.
func NewDNSQuery(srcMAC, dstMAC MAC, src, dst IPv4, srcPort, id uint16, name string) *Packet {
	return &Packet{
		Eth:  &Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4},
		IPv4: &IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP:  &UDP{SrcPort: srcPort, DstPort: PortDNS},
		DNS:  &DNS{ID: id, QName: name, QType: 1},
	}
}

// NewDNSResponse builds a DNS response carrying a single A record.
func NewDNSResponse(srcMAC, dstMAC MAC, src, dst IPv4, dstPort, id uint16, name string, addr IPv4) *Packet {
	return &Packet{
		Eth:  &Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4},
		IPv4: &IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP:  &UDP{SrcPort: PortDNS, DstPort: dstPort},
		DNS: &DNS{ID: id, Response: true, QName: name, QType: 1,
			Answers: []DNSAnswer{{Name: name, TTL: 300, Addr: addr}}},
	}
}

// NewFTPCommand builds an FTP control-channel command from client to
// server (destination port 21).
func NewFTPCommand(srcMAC, dstMAC MAC, src, dst IPv4, srcPort uint16, command, arg string) *Packet {
	p := NewTCP(srcMAC, dstMAC, src, dst, srcPort, PortFTPControl, FlagACK|FlagPSH, nil)
	p.FTP = &FTPControl{Command: command, Arg: arg}
	if command == "PORT" {
		if ip, port, ok := parseFTPHostPort(arg); ok {
			p.FTP.DataIP, p.FTP.DataPort = ip, port
		}
	}
	return p
}
