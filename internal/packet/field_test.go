package packet

import (
	"testing"
)

func TestFieldRegistryNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]Field{}
	for _, f := range AllFields() {
		name := f.String()
		if prev, dup := seen[name]; dup {
			t.Fatalf("duplicate field name %q for %d and %d", name, prev, f)
		}
		seen[name] = f
		got, ok := FieldByName(name)
		if !ok || got != f {
			t.Fatalf("FieldByName(%q) = (%v, %v), want (%v, true)", name, got, ok, f)
		}
		if !f.Valid() {
			t.Fatalf("registered field %v reports Valid() = false", f)
		}
	}
	if _, ok := FieldByName("no.such.field"); ok {
		t.Fatal("FieldByName resolved a nonexistent name")
	}
	if FieldInvalid.Valid() {
		t.Fatal("FieldInvalid reports valid")
	}
}

func TestFieldLayers(t *testing.T) {
	cases := map[Field]Layer{
		FieldInPort:      LayerMeta,
		FieldDropped:     LayerMeta,
		FieldEthSrc:      Layer2,
		FieldARPSenderIP: Layer3,
		FieldIPSrc:       Layer3,
		FieldSrcPort:     Layer4,
		FieldTCPFin:      Layer4,
		FieldDHCPYourIP:  Layer7,
		FieldFTPDataPort: Layer7,
	}
	for f, want := range cases {
		if got := f.Layer(); got != want {
			t.Errorf("%v.Layer() = %v, want %v", f, got, want)
		}
	}
	if Layer2.String() != "L2" || LayerMeta.String() != "meta" || Layer7.String() != "L7" {
		t.Error("Layer.String misrenders")
	}
}

func TestPacketFieldExtraction(t *testing.T) {
	p := NewTCP(macA, macB, ipA, ipB, 31337, 443, FlagSYN|FlagACK, nil)
	cases := []struct {
		f    Field
		want Value
	}{
		{FieldEthSrc, Num(macA.Uint64())},
		{FieldEthDst, Num(macB.Uint64())},
		{FieldEthType, Num(uint64(EtherTypeIPv4))},
		{FieldIPSrc, Num(ipA.Uint64())},
		{FieldIPDst, Num(ipB.Uint64())},
		{FieldIPProto, Num(uint64(ProtoTCP))},
		{FieldIPTTL, Num(64)},
		{FieldSrcPort, Num(31337)},
		{FieldDstPort, Num(443)},
		{FieldTCPSyn, Num(1)},
		{FieldTCPFin, Num(0)},
		{FieldTCPRst, Num(0)},
		{FieldTCPFlags, Num(uint64(FlagSYN | FlagACK))},
	}
	for _, c := range cases {
		got, ok := p.Field(c.f)
		if !ok || got != c.want {
			t.Errorf("Field(%v) = (%v, %v), want (%v, true)", c.f, got, ok, c.want)
		}
	}
	// Fields from absent layers.
	for _, f := range []Field{FieldARPOp, FieldDHCPMsgType, FieldICMPType, FieldDNSID, FieldInPort} {
		if _, ok := p.Field(f); ok {
			t.Errorf("Field(%v) present on a TCP packet", f)
		}
	}
}

func TestPacketFieldARPAndUDP(t *testing.T) {
	arp := NewARPRequest(macA, ipA, ipB)
	if v, ok := arp.Field(FieldARPOp); !ok || v != Num(uint64(ARPRequest)) {
		t.Errorf("arp.op = %v, %v", v, ok)
	}
	if v, ok := arp.Field(FieldARPTargetIP); !ok || v != Num(ipB.Uint64()) {
		t.Errorf("arp.target_ip = %v, %v", v, ok)
	}

	udp := NewUDP(macA, macB, ipA, ipB, 9999, 53, nil)
	if v, ok := udp.Field(FieldSrcPort); !ok || v != Num(9999) {
		t.Errorf("udp src port = %v, %v", v, ok)
	}
	if _, ok := udp.Field(FieldTCPSyn); ok {
		t.Error("tcp.syn extracted from UDP packet")
	}
}

func TestPacketFieldL7(t *testing.T) {
	msg := &DHCPv4{Op: DHCPBootReply, Xid: 77, MsgType: DHCPOffer, YourIP: MustIPv4("10.0.0.9"), ClientMAC: macA, LeaseSecs: 60}
	dhcp := NewDHCP(macB, macA, ipB, BroadcastIPv4, msg)
	checks := []struct {
		f    Field
		want Value
	}{
		{FieldDHCPMsgType, Num(uint64(DHCPOffer))},
		{FieldDHCPYourIP, Num(MustIPv4("10.0.0.9").Uint64())},
		{FieldDHCPClientMAC, Num(macA.Uint64())},
		{FieldDHCPLeaseSecs, Num(60)},
		{FieldDHCPXid, Num(77)},
	}
	for _, c := range checks {
		if v, ok := dhcp.Field(c.f); !ok || v != c.want {
			t.Errorf("Field(%v) = (%v, %v), want %v", c.f, v, ok, c.want)
		}
	}

	dns := NewDNSResponse(macB, macA, ipB, ipA, 5353, 42, "a.example", MustIPv4("1.2.3.4"))
	if v, ok := dns.Field(FieldDNSQName); !ok || v != Str("a.example") {
		t.Errorf("dns.qname = %v, %v", v, ok)
	}
	if v, ok := dns.Field(FieldDNSAnswerIP); !ok || v != Num(MustIPv4("1.2.3.4").Uint64()) {
		t.Errorf("dns.answer_ip = %v, %v", v, ok)
	}

	ftp := NewFTPCommand(macA, macB, ipA, ipB, 40000, "PORT", "10,0,0,1,0,21")
	if v, ok := ftp.Field(FieldFTPCommand); !ok || v != Str("PORT") {
		t.Errorf("ftp.command = %v, %v", v, ok)
	}
	if v, ok := ftp.Field(FieldFTPDataPort); !ok || v != Num(21) {
		t.Errorf("ftp.data_port = %v, %v", v, ok)
	}
}

func TestValueOrderingAndString(t *testing.T) {
	if !Num(1).Less(Num(2)) || Num(2).Less(Num(1)) {
		t.Error("numeric ordering broken")
	}
	if !Num(99).Less(Str("a")) {
		t.Error("numerics should order before strings")
	}
	if !Str("a").Less(Str("b")) {
		t.Error("string ordering broken")
	}
	if Num(5).String() != "5" || Str("x").String() != `"x"` {
		t.Error("Value.String misrenders")
	}
	if Num(5).IsStr() || !Str("x").IsStr() {
		t.Error("IsStr wrong")
	}
	if Num(5).Uint64() != 5 || Str("x").Text() != "x" {
		t.Error("accessors wrong")
	}
}

func TestValueComparable(t *testing.T) {
	m := map[Value]int{Num(1): 1, Str("1"): 2}
	if m[Num(1)] != 1 || m[Str("1")] != 2 {
		t.Fatal("Value does not behave as a map key")
	}
	if Num(1) == Str("1") {
		t.Fatal("numeric and string values compare equal")
	}
}
