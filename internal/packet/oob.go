package packet

import "fmt"

// OOBKind enumerates out-of-band (non-packet) event kinds a switch can
// react to — the values carried in the oob.kind field.
type OOBKind uint8

// Out-of-band event kinds.
const (
	OOBNone OOBKind = iota
	OOBLinkDown
	OOBLinkUp
)

// String names the kind.
func (k OOBKind) String() string {
	switch k {
	case OOBNone:
		return "none"
	case OOBLinkDown:
		return "link-down"
	case OOBLinkUp:
		return "link-up"
	default:
		return fmt.Sprintf("OOBKind(%d)", uint8(k))
	}
}
