package packet

import (
	"encoding/binary"
	"testing"
)

// Checksum correctness tests: every serialized frame must carry real,
// independently verifiable checksums in the bytes the encoders zero
// before filling — IPv4 header, TCP and UDP with their pseudo-headers,
// ICMP. The verification property used throughout is the RFC 1071 one:
// summing a region that embeds its own correct checksum folds to zero.

// transportRegion encodes p and slices the transport region out of the
// Ethernet frame (IHL is fixed at 5, no options).
func transportRegion(t *testing.T, p *Packet) ([]byte, []byte) {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data, data[ethernetHeaderLen+ipv4HeaderLen:]
}

func TestEncodedChecksumsVerify(t *testing.T) {
	tcp := NewTCP(macA, macB, ipA, ipB, 40000, 80, FlagSYN|FlagACK, []byte("checksum me"))
	udp := NewUDP(macA, macB, ipA, ipB, 40000, 5000, []byte{0xaa, 0xbb, 0xcc})
	icmp := NewICMPEcho(macA, macB, ipA, ipB, 7, 3, false)
	icmp.ICMP.Payload = []byte("ping")

	for _, tc := range []struct {
		name  string
		p     *Packet
		proto IPProto
	}{
		{"tcp", tcp, ProtoTCP},
		{"udp", udp, ProtoUDP},
		{"icmp", icmp, ProtoICMP},
	} {
		data, seg := transportRegion(t, tc.p)
		ip := data[ethernetHeaderLen : ethernetHeaderLen+ipv4HeaderLen]
		if got := internetChecksum(ip, 0); got != 0 {
			t.Errorf("%s: IPv4 header checksum does not verify (residual %#04x)", tc.name, got)
		}
		if binary.BigEndian.Uint16(ip[10:12]) == 0 {
			t.Errorf("%s: IPv4 checksum bytes left zero", tc.name)
		}
		var initial uint32
		if tc.proto != ProtoICMP { // ICMP has no pseudo-header
			initial = pseudoHeaderSum(tc.p.IPv4.Src, tc.p.IPv4.Dst, tc.proto, len(seg))
		}
		if got := internetChecksum(seg, initial); got != 0 {
			t.Errorf("%s: transport checksum does not verify (residual %#04x)", tc.name, got)
		}
	}
}

// The transport checksum bytes themselves must be non-zero for these
// payloads (a zero TCP checksum here would mean the field was never
// filled; UDP's zero-means-absent rule is tested separately).
func TestChecksumBytesFilled(t *testing.T) {
	_, seg := transportRegion(t, NewTCP(macA, macB, ipA, ipB, 1, 2, FlagSYN, nil))
	if binary.BigEndian.Uint16(seg[16:18]) == 0 {
		t.Error("TCP checksum bytes left zero")
	}
	_, dg := transportRegion(t, NewUDP(macA, macB, ipA, ipB, 1, 2, []byte{1}))
	if binary.BigEndian.Uint16(dg[6:8]) == 0 {
		t.Error("UDP checksum bytes left zero")
	}
	if got := binary.BigEndian.Uint16(dg[4:6]); got != udpHeaderLen+1 {
		t.Errorf("UDP length = %d, want %d", got, udpHeaderLen+1)
	}
	_, msg := transportRegion(t, NewICMPEcho(macA, macB, ipA, ipB, 9, 9, true))
	if binary.BigEndian.Uint16(msg[2:4]) == 0 {
		t.Error("ICMP checksum bytes left zero")
	}
}

// RFC 768: a datagram whose checksum computes to zero transmits 0xffff,
// and a receiver treats an on-wire zero as "no checksum present".
func TestUDPZeroChecksumRule(t *testing.T) {
	// Engineer a computed sum of zero: with src=dst=0.0.0.0 the pseudo
	// header contributes proto(17) + length(8), the header contributes
	// ports + length(8), so srcPort = ^uint16(17+8+8) makes the
	// ones-complement total fold to 0xffff and the checksum to zero.
	var zero IPv4
	u := &UDP{SrcPort: ^uint16(17 + 8 + 8)}
	dg := u.appendHeader(nil)
	u.fillChecksum(dg, zero, zero)
	if got := binary.BigEndian.Uint16(dg[6:8]); got != 0xffff {
		t.Fatalf("computed-zero checksum transmitted as %#04x, want 0xffff", got)
	}
	if got := internetChecksum(dg, pseudoHeaderSum(zero, zero, ProtoUDP, len(dg))); got != 0 {
		t.Fatalf("0xffff substitute does not verify (residual %#04x)", got)
	}

	// On-wire zero disables verification: corrupting the payload of a
	// checksum-less datagram must still decode.
	p := NewUDP(macA, macB, ipA, ipB, 1000, 2000, []byte("no checksum"))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	off := ethernetHeaderLen + ipv4HeaderLen
	data[off+6], data[off+7] = 0, 0 // strip the checksum
	data[off+udpHeaderLen] ^= 0xff  // corrupt the payload
	if _, err := Decode(data); err != nil {
		t.Fatalf("checksum-less datagram rejected: %v", err)
	}
}

// Corruption coverage for the layers TestDecodeRejectsCorruptChecksums
// leaves out: UDP payloads and ICMP headers.
func TestDecodeRejectsCorruptUDPAndICMP(t *testing.T) {
	udp := NewUDP(macA, macB, ipA, ipB, 1000, 2000, []byte("payload"))
	data, err := udp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // last payload byte
	if _, err := Decode(data); err == nil {
		t.Error("corrupt UDP payload accepted")
	}

	icmp := NewICMPEcho(macA, macB, ipA, ipB, 7, 3, false)
	data, err = icmp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data[ethernetHeaderLen+ipv4HeaderLen+4] ^= 0xff // echo ID
	if _, err := Decode(data); err == nil {
		t.Error("corrupt ICMP header accepted")
	}
}

// The TCP and UDP checksums must cover the pseudo-header: rewriting the
// IP addresses (and fixing the IP header checksum, as NAT would) without
// updating the transport checksum must fail transport verification.
func TestTransportChecksumCoversPseudoHeader(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Packet
	}{
		{"tcp", NewTCP(macA, macB, ipA, ipB, 1, 2, FlagSYN, nil)},
		{"udp", NewUDP(macA, macB, ipA, ipB, 1, 2, []byte{1, 2})},
	} {
		data, err := tc.p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		ip := data[ethernetHeaderLen : ethernetHeaderLen+ipv4HeaderLen]
		natted := MustIPv4("172.16.0.1")
		copy(ip[12:16], natted[:]) // rewrite source
		ip[10], ip[11] = 0, 0
		binary.BigEndian.PutUint16(ip[10:12], internetChecksum(ip, 0))
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: address rewrite without checksum update accepted", tc.name)
		}
	}
}
