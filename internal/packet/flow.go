package packet

import (
	"fmt"
	"sort"
)

// Endpoint is one side of a conversation: an IPv4 address plus L4 port.
// It is comparable and map-key friendly.
type Endpoint struct {
	Addr IPv4
	Port uint16
}

// String renders "addr:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow is a directed 5-tuple-lite (the protocols here are unambiguous from
// context): source and destination endpoints plus IP protocol.
type Flow struct {
	Src, Dst Endpoint
	Proto    IPProto
}

// FlowOf extracts the flow of an IPv4 packet with an L4 layer. ok is false
// for non-IP or port-less packets.
func FlowOf(p *Packet) (Flow, bool) {
	if p.IPv4 == nil {
		return Flow{}, false
	}
	f := Flow{Proto: p.IPv4.Protocol}
	f.Src.Addr, f.Dst.Addr = p.IPv4.Src, p.IPv4.Dst
	switch {
	case p.TCP != nil:
		f.Src.Port, f.Dst.Port = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		f.Src.Port, f.Dst.Port = p.UDP.SrcPort, p.UDP.DstPort
	default:
		return Flow{}, false
	}
	return f, true
}

// Reverse returns the flow with endpoints swapped — the return direction.
func (f Flow) Reverse() Flow {
	return Flow{Src: f.Dst, Dst: f.Src, Proto: f.Proto}
}

// String renders "proto src->dst".
func (f Flow) String() string {
	return fmt.Sprintf("%s %s->%s", f.Proto, f.Src, f.Dst)
}

// fnv1aMix folds v into an FNV-1a running hash.
func fnv1aMix(h uint64, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

const fnvOffset = 14695981039346656037

// Hash returns a direction-sensitive hash of the flow.
func (f Flow) Hash() uint64 {
	h := uint64(fnvOffset)
	h = fnv1aMix(h, f.Src.Addr.Uint64()<<16|uint64(f.Src.Port))
	h = fnv1aMix(h, f.Dst.Addr.Uint64()<<16|uint64(f.Dst.Port))
	return fnv1aMix(h, uint64(f.Proto))
}

// HashValues computes an order-insensitive FNV-1a hash of a value
// multiset: the values are sorted before mixing, so any permutation
// (e.g. the src/dst fields of a flow and its reverse) hashes alike. It is
// the single hash definition shared by the monitor's hash operands and by
// hash-based network functions, so that "the port selected by the flow
// hash" means the same thing to the app and to the property checking it.
func HashValues(vals []Value) uint64 {
	sorted := append([]Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	const prime = 1099511628211
	sum := uint64(fnvOffset)
	mix := func(b byte) {
		sum ^= uint64(b)
		sum *= prime
	}
	for _, v := range sorted {
		if v.IsStr() {
			s := v.Text()
			for i := 0; i < len(s); i++ {
				mix(s[i])
			}
			mix(0xff)
		} else {
			n := v.Uint64()
			for i := 0; i < 8; i++ {
				mix(byte(n >> (8 * i)))
			}
		}
	}
	return sum
}

// SymmetricHash returns a hash that is identical for a flow and its
// reverse, the property load balancers and connection trackers rely on
// (gopacket calls this FastHash symmetry).
func (f Flow) SymmetricHash() uint64 {
	a := f.Src.Addr.Uint64()<<16 | uint64(f.Src.Port)
	b := f.Dst.Addr.Uint64()<<16 | uint64(f.Dst.Port)
	if a > b {
		a, b = b, a
	}
	h := uint64(fnvOffset)
	h = fnv1aMix(h, a)
	h = fnv1aMix(h, b)
	return fnv1aMix(h, uint64(f.Proto))
}
