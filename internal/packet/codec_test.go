package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	macA = MustMAC("02:00:00:00:00:0a")
	macB = MustMAC("02:00:00:00:00:0b")
	ipA  = MustIPv4("10.0.0.1")
	ipB  = MustIPv4("192.168.1.9")
)

// roundTrip encodes p and decodes the bytes back, failing the test on any
// error.
func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v (packet %s)", err, p.Summary())
	}
	return q
}

func TestTCPRoundTrip(t *testing.T) {
	p := NewTCP(macA, macB, ipA, ipB, 31337, 80, FlagSYN|FlagACK, []byte("hello"))
	p.TCP.Seq, p.TCP.Ack = 1000, 2000
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p.TCP, q.TCP) {
		t.Fatalf("TCP mismatch:\n  in  %+v\n  out %+v", p.TCP, q.TCP)
	}
	if !reflect.DeepEqual(p.IPv4, q.IPv4) || !reflect.DeepEqual(p.Eth, q.Eth) {
		t.Fatal("outer layers mismatch")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewUDP(macA, macB, ipA, ipB, 5000, 6000, []byte{1, 2, 3})
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p.UDP, q.UDP) {
		t.Fatalf("UDP mismatch:\n  in  %+v\n  out %+v", p.UDP, q.UDP)
	}
}

func TestUDPEmptyPayloadRoundTrip(t *testing.T) {
	p := NewUDP(macA, macB, ipA, ipB, 1, 2, nil)
	q := roundTrip(t, p)
	if q.UDP.SrcPort != 1 || q.UDP.DstPort != 2 || len(q.UDP.Payload) != 0 {
		t.Fatalf("got %+v", q.UDP)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	p := NewICMPEcho(macA, macB, ipA, ipB, 7, 3, false)
	p.ICMP.Payload = []byte("ping payload")
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p.ICMP, q.ICMP) {
		t.Fatalf("ICMP mismatch:\n  in  %+v\n  out %+v", p.ICMP, q.ICMP)
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := NewARPRequest(macA, ipA, ipB)
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p.ARP, q.ARP) {
		t.Fatalf("ARP mismatch:\n  in  %+v\n  out %+v", p.ARP, q.ARP)
	}
	r := NewARPReply(macB, ipB, macA, ipA)
	s := roundTrip(t, r)
	if s.ARP.Op != ARPReply || s.ARP.TargetMAC != macA {
		t.Fatalf("ARP reply mismatch: %+v", s.ARP)
	}
}

func TestDHCPRoundTrip(t *testing.T) {
	msg := &DHCPv4{
		Op:          DHCPBootRequest,
		Xid:         0xdeadbeef,
		ClientMAC:   macA,
		MsgType:     DHCPRequest,
		RequestedIP: MustIPv4("10.0.0.50"),
		ServerID:    MustIPv4("10.0.0.2"),
		LeaseSecs:   3600,
		Extra:       []DHCPOption{{Code: 12, Value: []byte("hostname")}},
	}
	p := NewDHCP(macA, BroadcastMAC, IPv4{}, BroadcastIPv4, msg)
	q := roundTrip(t, p)
	if q.DHCP == nil {
		t.Fatal("DHCP layer not recognized on decode")
	}
	if !reflect.DeepEqual(msg, q.DHCP) {
		t.Fatalf("DHCP mismatch:\n  in  %+v\n  out %+v", msg, q.DHCP)
	}
}

func TestDHCPReplyPortsAndDirection(t *testing.T) {
	msg := &DHCPv4{Op: DHCPBootReply, Xid: 1, MsgType: DHCPAck, YourIP: MustIPv4("10.0.0.50"), ClientMAC: macA}
	p := NewDHCP(macB, macA, ipB, MustIPv4("10.0.0.50"), msg)
	if p.UDP.SrcPort != PortDHCPServer || p.UDP.DstPort != PortDHCPClient {
		t.Fatalf("reply ports = %d->%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	q := roundTrip(t, p)
	if q.DHCP.MsgType != DHCPAck || q.DHCP.YourIP != MustIPv4("10.0.0.50") {
		t.Fatalf("decoded %+v", q.DHCP)
	}
}

func TestDNSRoundTrip(t *testing.T) {
	p := NewDNSQuery(macA, macB, ipA, ipB, 5353, 42, "example.com")
	q := roundTrip(t, p)
	if q.DNS == nil || q.DNS.QName != "example.com" || q.DNS.Response {
		t.Fatalf("decoded %+v", q.DNS)
	}
	r := NewDNSResponse(macB, macA, ipB, ipA, 5353, 42, "example.com", MustIPv4("93.184.216.34"))
	s := roundTrip(t, r)
	if !s.DNS.Response || len(s.DNS.Answers) != 1 || s.DNS.Answers[0].Addr != MustIPv4("93.184.216.34") {
		t.Fatalf("decoded %+v", s.DNS)
	}
}

func TestFTPRoundTrip(t *testing.T) {
	p := NewFTPCommand(macA, macB, ipA, ipB, 40000, "PORT", "10,0,0,1,156,64")
	if p.FTP.DataPort != 156<<8|64 {
		t.Fatalf("builder DataPort = %d", p.FTP.DataPort)
	}
	q := roundTrip(t, p)
	if q.FTP == nil || q.FTP.Command != "PORT" {
		t.Fatalf("decoded %+v", q.FTP)
	}
	if q.FTP.DataIP != ipA || q.FTP.DataPort != 156<<8|64 {
		t.Fatalf("PORT decode: ip=%v port=%d", q.FTP.DataIP, q.FTP.DataPort)
	}
}

func TestFTPPassiveReply(t *testing.T) {
	f, err := decodeFTPControl([]byte("227 Entering Passive Mode (192,168,1,9,19,137)\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.ReplyCode != 227 || f.DataIP != ipB || f.DataPort != 19<<8|137 {
		t.Fatalf("decoded %+v", f)
	}
}

func TestFTPBadPort(t *testing.T) {
	if _, err := decodeFTPControl([]byte("PORT 1,2,3\r\n")); err == nil {
		t.Fatal("malformed PORT accepted")
	}
}

func TestDecodeRejectsCorruptChecksums(t *testing.T) {
	p := NewTCP(macA, macB, ipA, ipB, 1, 2, FlagSYN, nil)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of the TCP header (sequence number).
	data[ethernetHeaderLen+ipv4HeaderLen+5] ^= 0xff
	if _, err := Decode(data); err == nil {
		t.Fatal("corrupt TCP checksum accepted")
	}
	// Corrupt the IP header.
	data2, _ := p.Encode()
	data2[ethernetHeaderLen+8] ^= 0xff // TTL
	if _, err := Decode(data2); err == nil {
		t.Fatal("corrupt IP checksum accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := NewUDP(macA, macB, ipA, ipB, 1000, 2000, []byte("payload"))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			// Truncations that still satisfy the IP total length check can
			// decode; anything shorter than L3+L4 headers must not.
			if n < ethernetHeaderLen+ipv4HeaderLen+udpHeaderLen {
				t.Fatalf("truncated frame of %d bytes decoded", n)
			}
		}
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0xddf2,
	// checksum ^0xddf2 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := internetChecksum(data, 0); got != 0x220d {
		t.Fatalf("checksum = %#04x, want 0x220d", got)
	}
}

func TestInternetChecksumOddLength(t *testing.T) {
	if got := internetChecksum([]byte{0xab}, 0); got != ^uint16(0xab00) {
		t.Fatalf("odd-length checksum = %#04x", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewTCP(macA, macB, ipA, ipB, 1, 2, FlagSYN, []byte("data"))
	q := p.Clone()
	q.IPv4.Src = ipB
	q.TCP.Payload[0] = 'X'
	if p.IPv4.Src != ipA || p.TCP.Payload[0] != 'd' {
		t.Fatal("Clone shares storage with original")
	}
}

// Property: random valid TCP/UDP packets round-trip through encode/decode.
func TestRoundTripProperty(t *testing.T) {
	f := func(srcMAC, dstMAC [6]byte, src, dst [4]byte, sp, dp uint16, flags uint8, payload []byte) bool {
		if len(payload) > 1200 {
			payload = payload[:1200]
		}
		var p *Packet
		if sp%2 == 0 {
			p = NewTCP(MAC(srcMAC), MAC(dstMAC), IPv4(src), IPv4(dst), sp, dp, TCPFlags(flags&0x3f), payload)
		} else {
			// Avoid ports that trigger L7 decoding of random bytes.
			if sp == PortDNS || dp == PortDNS || sp == PortDHCPServer || dp == PortDHCPServer ||
				sp == PortDHCPClient || dp == PortDHCPClient || sp == PortFTPControl || dp == PortFTPControl {
				return true
			}
			p = NewUDP(MAC(srcMAC), MAC(dstMAC), IPv4(src), IPv4(dst), sp, dp, payload)
		}
		data, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(data)
		if err != nil {
			return false
		}
		data2, err := q.Encode()
		if err != nil {
			return false
		}
		return bytes.Equal(data, data2)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCoversLayers(t *testing.T) {
	cases := []struct {
		p    *Packet
		want string
	}{
		{NewARPRequest(macA, ipA, ipB), "ARP request"},
		{NewTCP(macA, macB, ipA, ipB, 1, 2, FlagSYN, nil), "TCP"},
		{NewICMPEcho(macA, macB, ipA, ipB, 1, 1, false), "ICMP"},
		{NewDNSQuery(macA, macB, ipA, ipB, 5353, 9, "x.test"), "DNS"},
	}
	for _, c := range cases {
		if got := c.p.Summary(); !bytes.Contains([]byte(got), []byte(c.want)) {
			t.Errorf("Summary() = %q, want substring %q", got, c.want)
		}
	}
}
