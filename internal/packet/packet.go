package packet

import (
	"fmt"
	"strings"
)

// Packet is a fully decoded packet: one pointer per recognized layer, nil
// when the layer is absent. The monitor's field registry reads from this
// representation; the dataplane serializes it back to bytes when needed.
//
// Packet values are treated as immutable once handed to the dataplane;
// functions that rewrite headers (e.g. NAT) operate on a Clone.
type Packet struct {
	Eth  *Ethernet
	ARP  *ARP
	IPv4 *IPv4Header
	ICMP *ICMPv4
	TCP  *TCP
	UDP  *UDP
	DHCP *DHCPv4
	DNS  *DNS
	FTP  *FTPControl
	// Payload is the undecoded remainder (application bytes for TCP/UDP
	// flows the L7 codecs don't recognize).
	Payload []byte
}

// Decode parses an Ethernet frame into a Packet, descending as deep as the
// codecs recognize. An error at any layer fails the whole decode: the
// simulator never produces half-valid frames, so tolerating them would only
// mask bugs.
func Decode(data []byte) (*Packet, error) {
	p := &Packet{}
	eth, rest, err := decodeEthernet(data)
	if err != nil {
		return nil, err
	}
	p.Eth = eth
	switch eth.Type {
	case EtherTypeARP:
		arp, err := decodeARP(rest)
		if err != nil {
			return nil, err
		}
		p.ARP = arp
		return p, nil
	case EtherTypeIPv4:
		ip, payload, err := decodeIPv4(rest)
		if err != nil {
			return nil, err
		}
		p.IPv4 = ip
		return p, p.decodeTransport(payload)
	default:
		p.Payload = append([]byte(nil), rest...)
		return p, nil
	}
}

func (p *Packet) decodeTransport(payload []byte) error {
	switch p.IPv4.Protocol {
	case ProtoICMP:
		icmp, err := decodeICMPv4(payload)
		if err != nil {
			return err
		}
		p.ICMP = icmp
	case ProtoTCP:
		tcp, err := decodeTCP(payload, p.IPv4.Src, p.IPv4.Dst)
		if err != nil {
			return err
		}
		p.TCP = tcp
		p.decodeApp(tcp.SrcPort, tcp.DstPort, tcp.Payload)
	case ProtoUDP:
		udp, err := decodeUDP(payload, p.IPv4.Src, p.IPv4.Dst)
		if err != nil {
			return err
		}
		p.UDP = udp
		p.decodeApp(udp.SrcPort, udp.DstPort, udp.Payload)
	default:
		p.Payload = append([]byte(nil), payload...)
	}
	return nil
}

// decodeApp attempts L7 decoding by port. Failure is not an error: an
// unrecognized payload simply stays at L4, mirroring how a switch parser
// would give up at its maximum depth.
func (p *Packet) decodeApp(src, dst uint16, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch {
	case src == PortDHCPServer || dst == PortDHCPServer || src == PortDHCPClient || dst == PortDHCPClient:
		if d, err := decodeDHCPv4(payload); err == nil {
			p.DHCP = d
			return
		}
	case src == PortDNS || dst == PortDNS:
		if d, err := decodeDNS(payload); err == nil {
			p.DNS = d
			return
		}
	case src == PortFTPControl || dst == PortFTPControl:
		if f, err := decodeFTPControl(payload); err == nil {
			p.FTP = f
			return
		}
	}
}

// Encode serializes the packet to wire format, computing lengths and
// checksums. The L7 layer (or raw Payload) is serialized last, directly
// into the frame, and the enclosing headers are patched afterwards.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(make([]byte, 0, 128))
}

// AppendEncode is Encode appending to b: every layer serializes directly
// into the destination buffer (inner lengths and checksums are patched
// in place after the payload lands), so encoding performs no heap
// allocation once b has capacity. The wire exporter's hot path leans on
// this — one reusable buffer per connection, zero garbage per event.
func (p *Packet) AppendEncode(b []byte) ([]byte, error) {
	if p.Eth == nil {
		return nil, fmt.Errorf("packet: cannot encode without an Ethernet layer")
	}
	b = p.Eth.encodeTo(b)
	switch {
	case p.ARP != nil:
		return p.ARP.encodeTo(b), nil
	case p.IPv4 != nil:
		ipStart := len(b)
		b = p.IPv4.encodeTo(b, 0) // total length and checksum patched below
		payloadStart := len(b)
		var err error
		b, err = p.appendTransport(b)
		if err != nil {
			return nil, err
		}
		patchIPv4(b[ipStart:payloadStart], len(b)-payloadStart)
		return b, nil
	default:
		return append(b, p.Payload...), nil
	}
}

// appendTransport appends the L4 segment — header, then the L7 payload
// rendered inline — and patches the transport checksum (and, for UDP,
// the length) over the appended region.
func (p *Packet) appendTransport(b []byte) ([]byte, error) {
	switch p.IPv4.Protocol {
	case ProtoICMP:
		if p.ICMP == nil {
			return nil, fmt.Errorf("packet: IPv4 protocol ICMP but no ICMP layer")
		}
		return p.ICMP.encodeTo(b), nil
	case ProtoTCP:
		if p.TCP == nil {
			return nil, fmt.Errorf("packet: IPv4 protocol TCP but no TCP layer")
		}
		start := len(b)
		b = p.TCP.appendHeader(b)
		b = p.appendAppPayload(b, p.TCP.Payload)
		p.TCP.fillChecksum(b[start:], p.IPv4.Src, p.IPv4.Dst)
		return b, nil
	case ProtoUDP:
		if p.UDP == nil {
			return nil, fmt.Errorf("packet: IPv4 protocol UDP but no UDP layer")
		}
		start := len(b)
		b = p.UDP.appendHeader(b)
		b = p.appendAppPayload(b, p.UDP.Payload)
		p.UDP.fillChecksum(b[start:], p.IPv4.Src, p.IPv4.Dst)
		return b, nil
	default:
		return append(b, p.Payload...), nil
	}
}

// appendAppPayload appends the L7 layer's serialization when a decoded
// L7 layer is present, or the transport's raw payload bytes otherwise.
func (p *Packet) appendAppPayload(b, raw []byte) []byte {
	switch {
	case p.DHCP != nil:
		return p.DHCP.encodeTo(b)
	case p.DNS != nil:
		return p.DNS.encodeTo(b)
	case p.FTP != nil:
		return p.FTP.encodeTo(b)
	default:
		return append(b, raw...)
	}
}

// Clone returns a deep copy of the packet. Header-rewriting network
// functions (NAT) clone before mutating so other observers of the original
// packet are unaffected.
func (p *Packet) Clone() *Packet {
	q := &Packet{}
	if p.Eth != nil {
		e := *p.Eth
		q.Eth = &e
	}
	if p.ARP != nil {
		a := *p.ARP
		q.ARP = &a
	}
	if p.IPv4 != nil {
		h := *p.IPv4
		q.IPv4 = &h
	}
	if p.ICMP != nil {
		m := *p.ICMP
		m.Payload = append([]byte(nil), p.ICMP.Payload...)
		q.ICMP = &m
	}
	if p.TCP != nil {
		t := *p.TCP
		t.Payload = append([]byte(nil), p.TCP.Payload...)
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		u.Payload = append([]byte(nil), p.UDP.Payload...)
		q.UDP = &u
	}
	if p.DHCP != nil {
		d := *p.DHCP
		d.Extra = append([]DHCPOption(nil), p.DHCP.Extra...)
		q.DHCP = &d
	}
	if p.DNS != nil {
		d := *p.DNS
		d.Answers = append([]DNSAnswer(nil), p.DNS.Answers...)
		q.DNS = &d
	}
	if p.FTP != nil {
		f := *p.FTP
		q.FTP = &f
	}
	q.Payload = append([]byte(nil), p.Payload...)
	return q
}

// Summary renders a one-line human-readable description, used in traces
// and violation reports.
func (p *Packet) Summary() string {
	var b strings.Builder
	switch {
	case p.ARP != nil:
		fmt.Fprintf(&b, "ARP %s %s(%s)->%s(%s)", p.ARP.Op,
			p.ARP.SenderIP, p.ARP.SenderMAC, p.ARP.TargetIP, p.ARP.TargetMAC)
	case p.IPv4 != nil:
		fmt.Fprintf(&b, "%s %s->%s", p.IPv4.Protocol, p.IPv4.Src, p.IPv4.Dst)
		switch {
		case p.TCP != nil:
			fmt.Fprintf(&b, " ports %d->%d flags %s", p.TCP.SrcPort, p.TCP.DstPort, p.TCP.Flags)
		case p.UDP != nil:
			fmt.Fprintf(&b, " ports %d->%d", p.UDP.SrcPort, p.UDP.DstPort)
		case p.ICMP != nil:
			fmt.Fprintf(&b, " type %d", p.ICMP.Type)
		}
		switch {
		case p.DHCP != nil:
			fmt.Fprintf(&b, " DHCP %s", p.DHCP.MsgType)
		case p.DNS != nil:
			fmt.Fprintf(&b, " DNS id=%d %q", p.DNS.ID, p.DNS.QName)
		case p.FTP != nil && p.FTP.Command != "":
			fmt.Fprintf(&b, " FTP %s", p.FTP.Command)
		case p.FTP != nil:
			fmt.Fprintf(&b, " FTP reply %d", p.FTP.ReplyCode)
		}
	case p.Eth != nil:
		fmt.Fprintf(&b, "%s %s->%s", p.Eth.Type, p.Eth.Src, p.Eth.Dst)
	default:
		b.WriteString("empty packet")
	}
	return b.String()
}
