package packet

import (
	"bytes"
	"testing"
)

// appendCorpus builds one packet per codec family, the same shapes the
// fuzz seeds use.
func appendCorpus() []*Packet {
	macS := MustMAC("02:00:00:00:00:0a")
	macD := MustMAC("02:00:00:00:00:0b")
	ipS := MustIPv4("10.0.0.1")
	ipD := MustIPv4("203.0.113.9")
	return []*Packet{
		NewTCP(macS, macD, ipS, ipD, 40000, 80, FlagSYN|FlagACK, []byte("payload")),
		NewUDP(macS, macD, ipS, ipD, 40000, 53, []byte{1, 2, 3}),
		NewICMPEcho(macS, macD, ipS, ipD, 7, 1, false),
		NewARPRequest(macS, ipS, ipD),
		NewARPReply(macS, ipS, macD, ipD),
		NewDHCP(macS, macD, MustIPv4("0.0.0.0"), MustIPv4("255.255.255.255"), &DHCPv4{
			Op: DHCPBootRequest, Xid: 42, MsgType: DHCPDiscover, ClientMAC: macS,
			RequestedIP: MustIPv4("10.0.0.50"), LeaseSecs: 3600,
		}),
		NewDNSQuery(macS, macD, ipS, ipD, 40000, 99, "example.com"),
		NewDNSResponse(macD, macS, ipD, ipS, 40000, 99, "example.com", MustIPv4("93.184.216.34")),
		NewFTPCommand(macS, macD, ipS, ipD, 40000, "PORT", "10,0,0,1,156,64"),
	}
}

// TestAppendEncodeRoundTrips checks that the append-style encoder
// produces frames Decode accepts (checksums and lengths were patched
// correctly) and that appending lands after existing buffer content.
func TestAppendEncodeRoundTrips(t *testing.T) {
	for _, p := range appendCorpus() {
		prefix := []byte{0xde, 0xad}
		b, err := p.AppendEncode(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("%s: %v", p.Summary(), err)
		}
		if !bytes.HasPrefix(b, prefix) {
			t.Fatalf("%s: AppendEncode clobbered existing buffer content", p.Summary())
		}
		frame := b[len(prefix):]
		q, err := Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode of appended frame failed: %v", p.Summary(), err)
		}
		direct, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, direct) {
			t.Fatalf("%s: AppendEncode and Encode disagree\nappend: %x\ndirect: %x", p.Summary(), frame, direct)
		}
		re, err := q.Encode()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", p.Summary(), err)
		}
		if !bytes.Equal(frame, re) {
			t.Fatalf("%s: decode/re-encode not a fixed point", p.Summary())
		}
	}
}

// TestAppendEncodeZeroAlloc gates the wire exporter's hot path: once the
// destination buffer has capacity, serializing a frame-level packet
// (no string-bearing L7 layer) must not allocate.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	macS := MustMAC("02:00:00:00:00:0a")
	macD := MustMAC("02:00:00:00:00:0b")
	ipS := MustIPv4("10.0.0.1")
	ipD := MustIPv4("203.0.113.9")
	pkts := []*Packet{
		NewTCP(macS, macD, ipS, ipD, 40000, 80, FlagSYN, []byte("0123456789abcdef")),
		NewUDP(macS, macD, ipS, ipD, 40000, 5000, []byte{9, 9, 9}),
		NewICMPEcho(macS, macD, ipS, ipD, 7, 1, false),
		NewARPRequest(macS, ipS, ipD),
	}
	buf := make([]byte, 0, 4096)
	for _, p := range pkts {
		p := p
		allocs := testing.AllocsPerRun(100, func() {
			var err error
			buf, err = p.AppendEncode(buf[:0])
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: AppendEncode allocates %.1f/op, want 0", p.Summary(), allocs)
		}
	}
}
