package packet

import (
	"testing"
	"testing/quick"
)

func TestFlowOf(t *testing.T) {
	p := NewTCP(macA, macB, ipA, ipB, 1000, 80, FlagSYN, nil)
	f, ok := FlowOf(p)
	if !ok {
		t.Fatal("FlowOf failed on TCP packet")
	}
	want := Flow{Src: Endpoint{ipA, 1000}, Dst: Endpoint{ipB, 80}, Proto: ProtoTCP}
	if f != want {
		t.Fatalf("FlowOf = %v, want %v", f, want)
	}
	if _, ok := FlowOf(NewARPRequest(macA, ipA, ipB)); ok {
		t.Fatal("FlowOf succeeded on ARP")
	}
	if _, ok := FlowOf(NewICMPEcho(macA, macB, ipA, ipB, 1, 1, false)); ok {
		t.Fatal("FlowOf succeeded on ICMP (no ports)")
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Src: Endpoint{ipA, 1}, Dst: Endpoint{ipB, 2}, Proto: ProtoUDP}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src || r.Proto != f.Proto {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double Reverse is not identity")
	}
}

func TestSymmetricHashProperty(t *testing.T) {
	f := func(sa, da [4]byte, sp, dp uint16, proto uint8) bool {
		fl := Flow{Src: Endpoint{IPv4(sa), sp}, Dst: Endpoint{IPv4(da), dp}, Proto: IPProto(proto)}
		return fl.SymmetricHash() == fl.Reverse().SymmetricHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionalHashDistinguishesDirections(t *testing.T) {
	f := Flow{Src: Endpoint{ipA, 1000}, Dst: Endpoint{ipB, 80}, Proto: ProtoTCP}
	if f.Hash() == f.Reverse().Hash() {
		t.Fatal("directional hash is symmetric for a non-palindromic flow")
	}
}

func TestHashDistinct(t *testing.T) {
	// Sanity: 1000 distinct flows should produce 1000 distinct 64-bit
	// hashes (a collision among so few inputs would indicate a broken mix).
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		f := Flow{
			Src:   Endpoint{IPv4FromUint32(uint32(i)), uint16(i)},
			Dst:   Endpoint{ipB, 80},
			Proto: ProtoTCP,
		}
		seen[f.Hash()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("1000 flows hashed to %d distinct values", len(seen))
	}
}

func TestEndpointAndFlowString(t *testing.T) {
	e := Endpoint{ipA, 80}
	if e.String() != "10.0.0.1:80" {
		t.Fatalf("Endpoint.String = %q", e.String())
	}
	f := Flow{Src: e, Dst: Endpoint{ipB, 443}, Proto: ProtoTCP}
	if f.String() != "TCP 10.0.0.1:80->192.168.1.9:443" {
		t.Fatalf("Flow.String = %q", f.String())
	}
}
