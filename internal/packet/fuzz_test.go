package packet

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip checks the codec's fixed-point property on
// arbitrary byte input: any frame Decode accepts must re-encode, and
// the re-encoded bytes must decode and encode again to the identical
// byte string. Raw input bytes are not required to survive (Decode
// normalizes — recomputed checksums, canonical lengths, dropped
// padding); the *second* encode is where the representation must have
// stabilized. The seed corpus covers every builder, so the fuzzer
// starts from deep, fully-layered frames rather than flailing at the
// Ethernet header. scripts/check.sh runs this briefly on every check;
// go test -fuzz gives it real time.
func FuzzCodecRoundTrip(f *testing.F) {
	macS := MustMAC("02:00:00:00:00:0a")
	macD := MustMAC("02:00:00:00:00:0b")
	ipS := MustIPv4("10.0.0.1")
	ipD := MustIPv4("203.0.113.9")
	seeds := []*Packet{
		NewTCP(macS, macD, ipS, ipD, 40000, 80, FlagSYN|FlagACK, []byte("payload")),
		NewUDP(macS, macD, ipS, ipD, 40000, 53, []byte{1, 2, 3}),
		NewICMPEcho(macS, macD, ipS, ipD, 7, 1, false),
		NewARPRequest(macS, ipS, ipD),
		NewARPReply(macS, ipS, macD, ipD),
		NewDHCP(macS, macD, MustIPv4("0.0.0.0"), MustIPv4("255.255.255.255"), &DHCPv4{
			Op: DHCPBootRequest, Xid: 42, MsgType: DHCPDiscover, ClientMAC: macS,
			RequestedIP: MustIPv4("10.0.0.50"), LeaseSecs: 3600,
		}),
		NewDNSQuery(macS, macD, ipS, ipD, 40000, 99, "example.com"),
		NewDNSResponse(macD, macS, ipD, ipS, 40000, 99, "example.com", MustIPv4("93.184.216.34")),
		NewFTPCommand(macS, macD, ipS, ipD, 40000, "PORT", "10,0,0,1,156,64"),
	}
	for _, p := range seeds {
		b, err := p.Encode()
		if err != nil {
			f.Fatalf("seed %s failed to encode: %v", p.Summary(), err)
		}
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected input is fine; crashing on it is not
		}
		b1, err := p.Encode()
		if err != nil {
			t.Fatalf("decoded packet %s failed to encode: %v", p.Summary(), err)
		}
		p2, err := Decode(b1)
		if err != nil {
			t.Fatalf("re-encoded bytes failed to decode: %v\npacket: %s\nbytes: %x", err, p.Summary(), b1)
		}
		b2, err := p2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v\npacket: %s", err, p2.Summary())
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode is not a fixed point after one decode:\nfirst:  %x\nsecond: %x\npacket: %s", b1, b2, p2.Summary())
		}
	})
}
