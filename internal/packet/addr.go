// Package packet implements the protocol substrate for the monitor: a
// from-scratch packet model with encode/decode for Ethernet, ARP, IPv4,
// ICMPv4, UDP, TCP, DHCPv4, DNS and FTP control traffic, a named field
// registry spanning L2-L7 (the paper's Feature 1, "access to necessary
// fields"), and flow/endpoint abstractions with a symmetric hash.
//
// The design follows gopacket's layering model (one struct per protocol
// layer, fixed-size comparable endpoint values) but is implemented with the
// standard library only.
package packet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// MAC is an Ethernet hardware address. Being an array it is comparable and
// usable as a map key.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses the colon-separated hexadecimal form, e.g.
// "00:11:22:33:44:55".
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("packet: invalid MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("packet: invalid MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustMAC is ParseMAC for constants in tests and examples; it panics on a
// malformed address.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String returns the colon-separated hexadecimal form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the Ethernet broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// Uint64 packs the address into the low 48 bits of a uint64, for use as a
// field value in monitor predicates.
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// MACFromUint64 unpacks the low 48 bits of v into a MAC.
func MACFromUint64(v uint64) MAC {
	return MAC{byte(v >> 40), byte(v >> 32), byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IPv4 is an IPv4 address. Being an array it is comparable and usable as a
// map key.
type IPv4 [4]byte

// ParseIPv4 parses dotted-quad notation, e.g. "10.0.0.1".
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("packet: invalid IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("packet: invalid IPv4 %q: %v", s, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustIPv4 is ParseIPv4 for constants in tests and examples; it panics on a
// malformed address.
func MustIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String returns dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian uint32.
func (ip IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// Uint64 returns the address widened to uint64, for use as a field value.
func (ip IPv4) Uint64() uint64 { return uint64(ip.Uint32()) }

// IPv4FromUint32 builds an address from its big-endian uint32 form.
func IPv4FromUint32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// IsZero reports whether ip is 0.0.0.0, the unspecified address.
func (ip IPv4) IsZero() bool { return ip == IPv4{} }

// BroadcastIPv4 is the limited broadcast address 255.255.255.255.
var BroadcastIPv4 = IPv4{255, 255, 255, 255}
