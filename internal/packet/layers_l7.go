package packet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Well-known application ports used for layer-7 classification.
const (
	PortFTPControl = 21
	PortDNS        = 53
	PortDHCPServer = 67
	PortDHCPClient = 68
)

// DHCPOp is the BOOTP op field.
type DHCPOp uint8

// BOOTP op codes.
const (
	DHCPBootRequest DHCPOp = 1
	DHCPBootReply   DHCPOp = 2
)

// DHCPMsgType is the DHCP message type (option 53).
type DHCPMsgType uint8

// DHCP message types (RFC 2131).
const (
	DHCPDiscover DHCPMsgType = 1
	DHCPOffer    DHCPMsgType = 2
	DHCPRequest  DHCPMsgType = 3
	DHCPDecline  DHCPMsgType = 4
	DHCPAck      DHCPMsgType = 5
	DHCPNak      DHCPMsgType = 6
	DHCPRelease  DHCPMsgType = 7
)

// String names the message type.
func (t DHCPMsgType) String() string {
	switch t {
	case DHCPDiscover:
		return "DISCOVER"
	case DHCPOffer:
		return "OFFER"
	case DHCPRequest:
		return "REQUEST"
	case DHCPDecline:
		return "DECLINE"
	case DHCPAck:
		return "ACK"
	case DHCPNak:
		return "NAK"
	case DHCPRelease:
		return "RELEASE"
	default:
		return fmt.Sprintf("DHCPMsgType(%d)", uint8(t))
	}
}

// DHCP option codes handled by the codec.
const (
	dhcpOptPad         = 0
	dhcpOptRequestedIP = 50
	dhcpOptLeaseTime   = 51
	dhcpOptMsgType     = 53
	dhcpOptServerID    = 54
	dhcpOptEnd         = 255
)

// dhcpMagic is the DHCP magic cookie that follows the BOOTP fixed fields.
var dhcpMagic = [4]byte{99, 130, 83, 99}

// DHCPv4 is a DHCP message: the BOOTP fixed fields this repository's
// properties refer to, plus the decoded options relevant to lease
// monitoring. Unknown options are preserved opaquely so that
// decode-then-encode round-trips.
type DHCPv4 struct {
	Op          DHCPOp
	Xid         uint32
	ClientIP    IPv4 // ciaddr
	YourIP      IPv4 // yiaddr
	ServerIP    IPv4 // siaddr
	ClientMAC   MAC  // chaddr
	MsgType     DHCPMsgType
	RequestedIP IPv4   // option 50, zero if absent
	ServerID    IPv4   // option 54, zero if absent
	LeaseSecs   uint32 // option 51, zero if absent
	// Extra holds unrecognized options in (code, value) order.
	Extra []DHCPOption
}

// DHCPOption is a raw DHCP option.
type DHCPOption struct {
	Code  uint8
	Value []byte
}

const dhcpFixedLen = 236 + 4 // BOOTP fields + magic cookie

func (d *DHCPv4) encodeTo(b []byte) []byte {
	b = append(b, byte(d.Op), 1, 6, 0) // htype ethernet, hlen 6, hops 0
	b = binary.BigEndian.AppendUint32(b, d.Xid)
	b = append(b, 0, 0, 0, 0) // secs, flags
	b = append(b, d.ClientIP[:]...)
	b = append(b, d.YourIP[:]...)
	b = append(b, d.ServerIP[:]...)
	b = append(b, 0, 0, 0, 0) // giaddr
	b = append(b, d.ClientMAC[:]...)
	b = append(b, make([]byte, 10)...)  // chaddr padding
	b = append(b, make([]byte, 192)...) // sname + file
	b = append(b, dhcpMagic[:]...)
	if d.MsgType != 0 {
		b = append(b, dhcpOptMsgType, 1, byte(d.MsgType))
	}
	if !d.RequestedIP.IsZero() {
		b = append(b, dhcpOptRequestedIP, 4)
		b = append(b, d.RequestedIP[:]...)
	}
	if !d.ServerID.IsZero() {
		b = append(b, dhcpOptServerID, 4)
		b = append(b, d.ServerID[:]...)
	}
	if d.LeaseSecs != 0 {
		b = append(b, dhcpOptLeaseTime, 4)
		b = binary.BigEndian.AppendUint32(b, d.LeaseSecs)
	}
	for _, opt := range d.Extra {
		b = append(b, opt.Code, byte(len(opt.Value)))
		b = append(b, opt.Value...)
	}
	return append(b, dhcpOptEnd)
}

func decodeDHCPv4(data []byte) (*DHCPv4, error) {
	if len(data) < dhcpFixedLen {
		return nil, fmt.Errorf("packet: DHCP message too short (%d bytes)", len(data))
	}
	if [4]byte(data[236:240]) != dhcpMagic {
		return nil, fmt.Errorf("packet: missing DHCP magic cookie")
	}
	d := &DHCPv4{
		Op:  DHCPOp(data[0]),
		Xid: binary.BigEndian.Uint32(data[4:8]),
	}
	copy(d.ClientIP[:], data[12:16])
	copy(d.YourIP[:], data[16:20])
	copy(d.ServerIP[:], data[20:24])
	copy(d.ClientMAC[:], data[28:34])
	opts := data[240:]
	for len(opts) > 0 {
		code := opts[0]
		switch code {
		case dhcpOptPad:
			opts = opts[1:]
			continue
		case dhcpOptEnd:
			return d, nil
		}
		if len(opts) < 2 {
			return nil, fmt.Errorf("packet: truncated DHCP option %d", code)
		}
		n := int(opts[1])
		if len(opts) < 2+n {
			return nil, fmt.Errorf("packet: truncated DHCP option %d (want %d bytes)", code, n)
		}
		val := opts[2 : 2+n]
		switch code {
		case dhcpOptMsgType:
			if n != 1 {
				return nil, fmt.Errorf("packet: DHCP message-type option of length %d", n)
			}
			d.MsgType = DHCPMsgType(val[0])
		case dhcpOptRequestedIP:
			if n != 4 {
				return nil, fmt.Errorf("packet: DHCP requested-IP option of length %d", n)
			}
			copy(d.RequestedIP[:], val)
		case dhcpOptServerID:
			if n != 4 {
				return nil, fmt.Errorf("packet: DHCP server-ID option of length %d", n)
			}
			copy(d.ServerID[:], val)
		case dhcpOptLeaseTime:
			if n != 4 {
				return nil, fmt.Errorf("packet: DHCP lease-time option of length %d", n)
			}
			d.LeaseSecs = binary.BigEndian.Uint32(val)
		default:
			d.Extra = append(d.Extra, DHCPOption{Code: code, Value: append([]byte(nil), val...)})
		}
		opts = opts[2+n:]
	}
	return nil, fmt.Errorf("packet: DHCP options not terminated")
}

// DNS is a minimal DNS message: header plus a single question and any
// number of A-record answers — the shape the monitored resolver traffic
// takes. It is sufficient for properties that correlate queries with
// responses.
type DNS struct {
	ID       uint16
	Response bool
	RCode    uint8
	QName    string
	QType    uint16
	Answers  []DNSAnswer
}

// DNSAnswer is an A-record answer.
type DNSAnswer struct {
	Name string
	TTL  uint32
	Addr IPv4
}

func (d *DNS) encodeTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, d.ID)
	var flags uint16
	if d.Response {
		flags |= 0x8000
	}
	flags |= uint16(d.RCode) & 0x000f
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, 1) // QDCOUNT
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Answers)))
	b = binary.BigEndian.AppendUint16(b, 0) // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0) // ARCOUNT
	b = appendDNSName(b, d.QName)
	b = binary.BigEndian.AppendUint16(b, d.QType)
	b = binary.BigEndian.AppendUint16(b, 1) // class IN
	for _, a := range d.Answers {
		b = appendDNSName(b, a.Name)
		b = binary.BigEndian.AppendUint16(b, 1) // type A
		b = binary.BigEndian.AppendUint16(b, 1) // class IN
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		b = binary.BigEndian.AppendUint16(b, 4)
		b = append(b, a.Addr[:]...)
	}
	return b
}

func appendDNSName(b []byte, name string) []byte {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0)
}

func readDNSName(data []byte, off int) (string, int, error) {
	var labels []string
	for {
		if off >= len(data) {
			return "", 0, fmt.Errorf("packet: truncated DNS name")
		}
		n := int(data[off])
		if n&0xc0 != 0 {
			return "", 0, fmt.Errorf("packet: compressed DNS names unsupported")
		}
		off++
		if n == 0 {
			return strings.Join(labels, "."), off, nil
		}
		if off+n > len(data) {
			return "", 0, fmt.Errorf("packet: truncated DNS label")
		}
		labels = append(labels, string(data[off:off+n]))
		off += n
	}
}

func decodeDNS(data []byte) (*DNS, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("packet: DNS message too short (%d bytes)", len(data))
	}
	d := &DNS{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	d.Response = flags&0x8000 != 0
	d.RCode = uint8(flags & 0x000f)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	if qd != 1 {
		return nil, fmt.Errorf("packet: DNS message with %d questions unsupported", qd)
	}
	name, off, err := readDNSName(data, 12)
	if err != nil {
		return nil, err
	}
	if off+4 > len(data) {
		return nil, fmt.Errorf("packet: truncated DNS question")
	}
	d.QName = name
	d.QType = binary.BigEndian.Uint16(data[off : off+2])
	off += 4
	for i := 0; i < an; i++ {
		aname, n, err := readDNSName(data, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+10 > len(data) {
			return nil, fmt.Errorf("packet: truncated DNS answer")
		}
		atype := binary.BigEndian.Uint16(data[off : off+2])
		ttl := binary.BigEndian.Uint32(data[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return nil, fmt.Errorf("packet: truncated DNS rdata")
		}
		if atype == 1 && rdlen == 4 {
			var addr IPv4
			copy(addr[:], data[off:off+4])
			d.Answers = append(d.Answers, DNSAnswer{Name: aname, TTL: ttl, Addr: addr})
		} else {
			return nil, fmt.Errorf("packet: DNS answer type %d unsupported", atype)
		}
		off += rdlen
	}
	return d, nil
}

// FTPControl is one line of an FTP control conversation. Commands carry a
// verb and argument; replies carry a numeric code and text. For PORT
// commands (and 227 passive-mode replies) the announced data-connection
// address is decoded — the field the paper's FTP property (from FAST)
// matches against the subsequent data connection.
type FTPControl struct {
	// Command is the verb ("PORT", "RETR", ...) for client lines, empty
	// for server replies.
	Command string
	// Arg is the raw argument text of a command line.
	Arg string
	// ReplyCode is the numeric code of a server reply, 0 for commands.
	ReplyCode int
	// ReplyText is the text of a server reply.
	ReplyText string
	// DataIP and DataPort are the decoded h1,h2,h3,h4,p1,p2 address from a
	// PORT command or 227 reply; DataPort is 0 when absent.
	DataIP   IPv4
	DataPort uint16
}

func (f *FTPControl) encodeTo(b []byte) []byte {
	if f.ReplyCode != 0 {
		return append(b, fmt.Sprintf("%d %s\r\n", f.ReplyCode, f.ReplyText)...)
	}
	if f.Arg != "" {
		return append(b, fmt.Sprintf("%s %s\r\n", f.Command, f.Arg)...)
	}
	return append(b, f.Command+"\r\n"...)
}

// parseFTPHostPort parses "h1,h2,h3,h4,p1,p2".
func parseFTPHostPort(s string) (IPv4, uint16, bool) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 6 {
		return IPv4{}, 0, false
	}
	var nums [6]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v > 255 {
			return IPv4{}, 0, false
		}
		nums[i] = v
	}
	ip := IPv4{byte(nums[0]), byte(nums[1]), byte(nums[2]), byte(nums[3])}
	return ip, uint16(nums[4])<<8 | uint16(nums[5]), true
}

func decodeFTPControl(data []byte) (*FTPControl, error) {
	line := strings.TrimRight(string(data), "\r\n")
	if line == "" {
		return nil, fmt.Errorf("packet: empty FTP control line")
	}
	f := &FTPControl{}
	if code, err := strconv.Atoi(strings.SplitN(line, " ", 2)[0]); err == nil && code >= 100 && code <= 599 {
		f.ReplyCode = code
		if idx := strings.Index(line, " "); idx >= 0 {
			f.ReplyText = line[idx+1:]
		}
		if code == 227 { // Entering Passive Mode (h1,h2,h3,h4,p1,p2)
			if open := strings.Index(f.ReplyText, "("); open >= 0 {
				if close := strings.Index(f.ReplyText[open:], ")"); close > 0 {
					if ip, port, ok := parseFTPHostPort(f.ReplyText[open+1 : open+close]); ok {
						f.DataIP, f.DataPort = ip, port
					}
				}
			}
		}
		return f, nil
	}
	fields := strings.SplitN(line, " ", 2)
	f.Command = strings.ToUpper(fields[0])
	if len(fields) == 2 {
		f.Arg = fields[1]
	}
	if f.Command == "PORT" {
		if ip, port, ok := parseFTPHostPort(f.Arg); ok {
			f.DataIP, f.DataPort = ip, port
		} else {
			return nil, fmt.Errorf("packet: malformed FTP PORT argument %q", f.Arg)
		}
	}
	return f, nil
}
