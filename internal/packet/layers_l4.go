package packet

import (
	"encoding/binary"
	"fmt"
)

// TCPFlags is the TCP flag byte (we model the low 8 flag bits).
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// TCP is a TCP segment header (no options; DataOffset is fixed at 5) plus
// payload.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   TCPFlags
	Window  uint16
	Urgent  uint16
	Payload []byte
}

const tcpHeaderLen = 20

// appendHeader appends the 20-byte TCP header with the checksum field
// zeroed; the caller appends the payload directly into the buffer and
// then calls fillChecksum over the whole segment. The two-phase shape
// keeps encoding zero-alloc: the payload never passes through a
// temporary buffer just to be summed.
func (t *TCP) appendHeader(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, byte(t.Flags)) // data offset 5 words
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum, written by fillChecksum
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	return b
}

// fillChecksum computes the RFC 793 segment checksum — pseudo-header
// plus seg (header and payload, checksum field still zero) — and writes
// it into the header in place.
func (t *TCP) fillChecksum(seg []byte, src, dst IPv4) {
	sum := internetChecksum(seg, pseudoHeaderSum(src, dst, ProtoTCP, len(seg)))
	binary.BigEndian.PutUint16(seg[16:18], sum)
}

func decodeTCP(data []byte, src, dst IPv4) (*TCP, error) {
	t := &TCP{}
	if err := parseTCP(t, data, src, dst); err != nil {
		return nil, err
	}
	if t.Payload != nil {
		t.Payload = append([]byte(nil), t.Payload...)
	}
	return t, nil
}

// parseTCP decodes into t, leaving Payload aliasing data — the caller
// copies it into whatever storage owns the packet.
func parseTCP(t *TCP, data []byte, src, dst IPv4) error {
	if len(data) < tcpHeaderLen {
		return fmt.Errorf("packet: TCP segment too short (%d bytes)", len(data))
	}
	off := int(data[12]>>4) * 4
	if off < tcpHeaderLen || off > len(data) {
		return fmt.Errorf("packet: bad TCP data offset %d", off)
	}
	if sum := internetChecksum(data, pseudoHeaderSum(src, dst, ProtoTCP, len(data))); sum != 0 {
		return fmt.Errorf("packet: bad TCP checksum")
	}
	*t = TCP{
		SrcPort: binary.BigEndian.Uint16(data[0:2]),
		DstPort: binary.BigEndian.Uint16(data[2:4]),
		Seq:     binary.BigEndian.Uint32(data[4:8]),
		Ack:     binary.BigEndian.Uint32(data[8:12]),
		Flags:   TCPFlags(data[13]),
		Window:  binary.BigEndian.Uint16(data[14:16]),
		Urgent:  binary.BigEndian.Uint16(data[18:20]),
	}
	if len(data) > off {
		t.Payload = data[off:]
	}
	return nil
}

// UDP is a UDP datagram header plus payload.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

const udpHeaderLen = 8

// appendHeader appends the 8-byte UDP header with the length and
// checksum fields zeroed; the caller appends the payload directly into
// the buffer and then calls fillChecksum over the whole datagram.
func (u *UDP) appendHeader(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = append(b, 0, 0) // length, written by fillChecksum
	b = append(b, 0, 0) // checksum, written by fillChecksum
	return b
}

// fillChecksum writes the datagram length and the RFC 768 checksum
// (pseudo-header plus header and payload) into dg in place. A computed
// sum of zero transmits as 0xffff: on the wire, zero means "no
// checksum".
func (u *UDP) fillChecksum(dg []byte, src, dst IPv4) {
	binary.BigEndian.PutUint16(dg[4:6], uint16(len(dg)))
	sum := internetChecksum(dg, pseudoHeaderSum(src, dst, ProtoUDP, len(dg)))
	if sum == 0 {
		sum = 0xffff
	}
	binary.BigEndian.PutUint16(dg[6:8], sum)
}

func decodeUDP(data []byte, src, dst IPv4) (*UDP, error) {
	u := &UDP{}
	if err := parseUDP(u, data, src, dst); err != nil {
		return nil, err
	}
	if u.Payload != nil {
		u.Payload = append([]byte(nil), u.Payload...)
	}
	return u, nil
}

// parseUDP decodes into u, leaving Payload aliasing data — the caller
// copies it into whatever storage owns the packet.
func parseUDP(u *UDP, data []byte, src, dst IPv4) error {
	if len(data) < udpHeaderLen {
		return fmt.Errorf("packet: UDP datagram too short (%d bytes)", len(data))
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < udpHeaderLen || length > len(data) {
		return fmt.Errorf("packet: UDP length %d outside datagram of %d", length, len(data))
	}
	data = data[:length]
	if binary.BigEndian.Uint16(data[6:8]) != 0 {
		if sum := internetChecksum(data, pseudoHeaderSum(src, dst, ProtoUDP, len(data))); sum != 0 {
			return fmt.Errorf("packet: bad UDP checksum")
		}
	}
	*u = UDP{
		SrcPort: binary.BigEndian.Uint16(data[0:2]),
		DstPort: binary.BigEndian.Uint16(data[2:4]),
	}
	if length > udpHeaderLen {
		u.Payload = data[udpHeaderLen:length]
	}
	return nil
}
