// Package dataplane implements the software switch the monitor runs on: a
// multi-table match-action pipeline in the OpenFlow 1.3 mold, extended
// with the stateful facilities the paper surveys — an OVS-style learn
// action (FAST), register arrays (P4/POF), rule timeouts, and full egress
// instrumentation that, unlike OpenFlow's egress tables, also sees drop
// decisions (the Feature 5 gap of Sec. 3.2).
//
// The switch assigns every arriving packet a PacketID and emits
// core.Events at ingress and at each forwarding decision; monitors and
// backends subscribe to that stream.
package dataplane

import (
	"fmt"
	"strings"

	"switchmon/internal/packet"
)

// PortNo numbers switch ports. Zero is "no port"/wildcard.
type PortNo uint64

// FieldMatch is one exact-match criterion on a packet field.
type FieldMatch struct {
	Field packet.Field
	Value packet.Value
}

// Match selects packets for a rule: optional ingress-port constraint plus
// exact matches on any registered packet fields. An empty Match matches
// everything (a table-miss rule has empty match and lowest priority).
//
// OutPort is meaningful only in egress tables (OpenFlow 1.5-style): it
// matches the output port the ingress pipeline chose. A rule with OutPort
// set never matches in the ingress pipeline.
type Match struct {
	InPort  PortNo // 0 = any
	OutPort PortNo // 0 = any; egress tables only
	Fields  []FieldMatch
}

// MatchesPacket reports whether the packet (arriving on inPort) satisfies
// the match in the ingress pipeline. A field the packet does not carry
// never matches; OutPort-constrained rules never match at ingress.
func (m Match) MatchesPacket(p *packet.Packet, inPort PortNo) bool {
	if m.OutPort != 0 {
		return false
	}
	return m.matchesCommon(p, inPort)
}

// MatchesEgress reports whether the match holds in the egress pipeline,
// where the chosen output port is available as metadata.
func (m Match) MatchesEgress(p *packet.Packet, inPort, outPort PortNo) bool {
	if m.OutPort != 0 && m.OutPort != outPort {
		return false
	}
	return m.matchesCommon(p, inPort)
}

func (m Match) matchesCommon(p *packet.Packet, inPort PortNo) bool {
	if m.InPort != 0 && m.InPort != inPort {
		return false
	}
	for _, fm := range m.Fields {
		v, ok := p.Field(fm.Field)
		if !ok || v != fm.Value {
			return false
		}
	}
	return true
}

// String renders the match for diagnostics.
func (m Match) String() string {
	var parts []string
	if m.InPort != 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.OutPort != 0 {
		parts = append(parts, fmt.Sprintf("out_port=%d", m.OutPort))
	}
	for _, fm := range m.Fields {
		parts = append(parts, fmt.Sprintf("%s=%s", fm.Field, fm.Value))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// MatchOn builds a Match on packet fields only.
func MatchOn(fields ...FieldMatch) Match { return Match{Fields: fields} }

// FM is shorthand for a numeric FieldMatch.
func FM(f packet.Field, v uint64) FieldMatch {
	return FieldMatch{Field: f, Value: packet.Num(v)}
}
