package dataplane

import (
	"fmt"
	"sort"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

// Rule is one flow-table entry.
type Rule struct {
	Priority    int
	Match       Match
	Actions     []Action
	IdleTimeout time.Duration
	HardTimeout time.Duration
	// Cookie tags rules for bulk removal by the app that installed them.
	Cookie uint64

	// Runtime state.
	packets  uint64
	bytes    uint64
	lastUsed time.Time
	id       uint64
	table    *Table
	timer    *sim.Timer
}

// Packets reports how many packets hit the rule.
func (r *Rule) Packets() uint64 { return r.packets }

// String renders the rule for diagnostics.
func (r *Rule) String() string {
	return fmt.Sprintf("prio=%d match[%s] actions=%d", r.Priority, r.Match, len(r.Actions))
}

// Table is one flow table: rules kept sorted by descending priority
// (insertion order breaks ties, earlier first, matching OpenFlow's
// "first match at highest priority" semantics under stable sort).
type Table struct {
	rules  []*Rule
	sw     *Switch
	index  int
	nextID uint64
}

// Len reports the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the live rules in match order. The slice is a copy; the
// rules are not.
func (t *Table) Rules() []*Rule {
	return append([]*Rule(nil), t.rules...)
}

// Add installs a rule, keeping the table sorted. Installation cost is the
// OpenFlow rule-mod path the paper calls out as unable to run at line
// rate — deliberately a sorted-slice insertion, not a cheap append.
func (t *Table) Add(r *Rule) *Rule {
	t.nextID++
	r.id = t.nextID
	r.table = t
	r.lastUsed = t.sw.sched.Now()
	idx := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < r.Priority
	})
	t.rules = append(t.rules, nil)
	copy(t.rules[idx+1:], t.rules[idx:])
	t.rules[idx] = r
	t.sw.stats.RuleMods++
	t.sw.mx.ruleMods.Inc()
	t.armTimeout(r)
	return r
}

// Remove uninstalls a rule. It is a no-op if the rule is not installed.
func (t *Table) Remove(r *Rule) {
	for i, x := range t.rules {
		if x == r {
			copy(t.rules[i:], t.rules[i+1:])
			t.rules[len(t.rules)-1] = nil
			t.rules = t.rules[:len(t.rules)-1]
			if r.timer != nil {
				r.timer.Stop()
				r.timer = nil
			}
			t.sw.stats.RuleMods++
			t.sw.mx.ruleMods.Inc()
			return
		}
	}
}

// RemoveByCookie uninstalls all rules carrying the cookie and reports how
// many were removed.
func (t *Table) RemoveByCookie(cookie uint64) int {
	kept := t.rules[:0]
	removed := 0
	for _, r := range t.rules {
		if r.Cookie == cookie {
			if r.timer != nil {
				r.timer.Stop()
				r.timer = nil
			}
			removed++
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(t.rules); i++ {
		t.rules[i] = nil
	}
	t.rules = kept
	if removed > 0 {
		t.sw.stats.RuleMods += uint64(removed)
		t.sw.mx.ruleMods.Add(uint64(removed))
	}
	return removed
}

// lookup finds the first (highest-priority) matching rule.
func (t *Table) lookup(p *packet.Packet, inPort PortNo) *Rule {
	for _, r := range t.rules {
		if r.Match.MatchesPacket(p, inPort) {
			return r
		}
	}
	return nil
}

// hit records a rule match for counters and idle timeouts.
func (t *Table) hit(r *Rule, size int) {
	r.packets++
	r.bytes += uint64(size)
	r.lastUsed = t.sw.sched.Now()
	t.sw.mx.tableHit(t.index)
}

// armTimeout schedules expiry. Hard timeouts fire unconditionally; idle
// timeouts re-arm until the rule has been unused for the full period.
func (t *Table) armTimeout(r *Rule) {
	switch {
	case r.HardTimeout > 0:
		r.timer = t.sw.sched.After(r.HardTimeout, func() { t.expire(r) })
	case r.IdleTimeout > 0:
		r.timer = t.sw.sched.After(r.IdleTimeout, func() { t.idleCheck(r) })
	}
}

func (t *Table) expire(r *Rule) {
	r.timer = nil
	t.Remove(r)
	t.sw.stats.RuleExpiries++
	t.sw.mx.ruleExpiries.Inc()
}

func (t *Table) idleCheck(r *Rule) {
	r.timer = nil
	idleSince := r.lastUsed.Add(r.IdleTimeout)
	now := t.sw.sched.Now()
	if now.Before(idleSince) {
		r.timer = t.sw.sched.After(idleSince.Sub(now), func() { t.idleCheck(r) })
		return
	}
	t.Remove(r)
	t.sw.stats.RuleExpiries++
	t.sw.mx.ruleExpiries.Inc()
}
