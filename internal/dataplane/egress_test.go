package dataplane

import (
	"testing"

	"switchmon/internal/core"
	"switchmon/internal/packet"
)

// egressSwitch builds a switch whose table 1 is the egress pipeline.
func egressSwitch(t *testing.T) (*Switch, map[PortNo][]*packet.Packet) {
	t.Helper()
	sw, _, delivered := testSwitch(t, 3, 1)
	sw.SetEgressStart(1)
	return sw, delivered
}

func TestEgressTableMatchesOutputPort(t *testing.T) {
	sw, delivered := egressSwitch(t)
	// Ingress: everything to port 2.
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2)}})
	// Egress: copies leaving port 2 get their TTL rewritten.
	sw.Table(1).Add(&Rule{
		Priority: 5,
		Match:    Match{OutPort: 2},
		Actions:  []Action{SetField(packet.FieldIPTTL, packet.Num(9))},
	})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 || delivered[2][0].IPv4.TTL != 9 {
		t.Fatalf("egress rewrite failed: %+v", delivered[2])
	}
}

func TestEgressDropFiltersOnePortOfFlood(t *testing.T) {
	sw, delivered := egressSwitch(t)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Flood()}})
	// Egress ACL: nothing may leave port 3.
	sw.Table(1).Add(&Rule{Priority: 5, Match: Match{OutPort: 3}, Actions: []Action{Drop()}})
	var drops, outs int
	sw.Observe(func(e core.Event) {
		if e.Kind == core.KindEgress {
			if e.Dropped {
				drops++
			} else {
				outs++
			}
		}
	})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 || len(delivered[3]) != 0 {
		t.Fatalf("delivered = %v", delivered)
	}
	// The ideal-switch instrumentation still reports the egress drop —
	// unlike real OF1.5, where it would vanish.
	if drops != 1 || outs != 1 {
		t.Fatalf("drops=%d outs=%d, want 1/1", drops, outs)
	}
	if sw.Stats().EgressDrops != 1 {
		t.Fatalf("stats = %+v", sw.Stats())
	}
}

func TestEgressPerPortRewriteDoesNotLeakAcrossCopies(t *testing.T) {
	sw, delivered := egressSwitch(t)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2), Output(3)}})
	sw.Table(1).Add(&Rule{
		Priority: 5,
		Match:    Match{OutPort: 2},
		Actions:  []Action{SetField(packet.FieldIPTTL, packet.Num(9))},
	})
	sw.Inject(1, tcpPkt())
	if delivered[2][0].IPv4.TTL != 9 {
		t.Fatal("port-2 copy not rewritten")
	}
	if delivered[3][0].IPv4.TTL != 64 {
		t.Fatal("port-3 copy polluted by port-2 rewrite")
	}
}

func TestIngressPipelineConfinedBeforeEgressStart(t *testing.T) {
	sw, delivered := egressSwitch(t)
	// A goto past the egress boundary must not run egress rules at
	// ingress time.
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2), Goto(1)}})
	sw.Table(1).Add(&Rule{Priority: 5, Actions: []Action{Drop()}}) // egress: drop all
	sw.Inject(1, tcpPkt())
	// The egress drop-all rule applies per-copy in the egress pass, so
	// nothing is delivered — but the point is the ingress pass terminated
	// at the boundary rather than looping into table 1 as ingress.
	if len(delivered[2]) != 0 {
		t.Fatalf("delivered = %v", delivered)
	}
	if sw.Stats().EgressDrops != 1 {
		t.Fatalf("stats = %+v", sw.Stats())
	}
}

func TestIngressDropNeverEntersEgressPipeline(t *testing.T) {
	// The paper's observation: dropped packets never enter the egress
	// pipeline. Our egress tables never see the ingress-dropped packet
	// (no egress rule hit), though the ideal-switch instrumentation still
	// emits the drop event.
	sw, _ := egressSwitch(t)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Drop()}})
	marker := sw.Table(1).Add(&Rule{Priority: 5, Actions: []Action{SetField(packet.FieldIPTTL, packet.Num(1))}})
	sw.Inject(1, tcpPkt())
	if marker.Packets() != 0 {
		t.Fatal("egress rule saw an ingress-dropped packet")
	}
	if sw.Stats().PacketsDrop != 1 {
		t.Fatalf("stats = %+v", sw.Stats())
	}
}

func TestOutPortRuleNeverMatchesAtIngress(t *testing.T) {
	sw, _, delivered := testSwitch(t, 3, 1)
	// No egress pipeline configured: an OutPort-constrained rule is inert.
	sw.Table(0).Add(&Rule{Priority: 10, Match: Match{OutPort: 2}, Actions: []Action{Drop()}})
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2)}})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 {
		t.Fatal("OutPort rule matched in the ingress pipeline")
	}
}
