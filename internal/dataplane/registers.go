package dataplane

import "fmt"

// RegisterFile models P4/POF-style per-switch register arrays: named,
// fixed-size arrays of 64-bit cells with O(1) indexed access. This is the
// "more rapid state mechanism" Sec. 3.3 says a scalable monitor
// implementation needs, in contrast to OpenFlow rule modifications.
type RegisterFile struct {
	arrays map[string][]uint64
	// Ops counts register accesses (reads+writes) for the state-update
	// benchmarks.
	Ops uint64
}

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{arrays: map[string][]uint64{}}
}

// Define allocates a named array of the given size. Redefining a name
// replaces the array (zeroed).
func (rf *RegisterFile) Define(name string, size int) {
	if size <= 0 {
		panic(fmt.Sprintf("dataplane: register array %q with size %d", name, size))
	}
	rf.arrays[name] = make([]uint64, size)
}

// Size reports the array size, or 0 if undefined.
func (rf *RegisterFile) Size(name string) int { return len(rf.arrays[name]) }

// Read returns the cell value. Out-of-range or undefined access panics:
// register programs are compiled, not user input.
func (rf *RegisterFile) Read(name string, idx int) uint64 {
	rf.Ops++
	return rf.arrays[name][idx]
}

// Write stores into a cell.
func (rf *RegisterFile) Write(name string, idx int, v uint64) {
	rf.Ops++
	rf.arrays[name][idx] = v
}

// IndexOf reduces a hash to a valid index for the array.
func (rf *RegisterFile) IndexOf(name string, hash uint64) int {
	n := len(rf.arrays[name])
	if n == 0 {
		panic(fmt.Sprintf("dataplane: register array %q undefined", name))
	}
	return int(hash % uint64(n))
}
