package dataplane

import (
	"fmt"
	"sort"

	"switchmon/internal/core"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

// MissPolicy says what table 0 does with a packet no rule matches.
type MissPolicy uint8

// Miss policies.
const (
	// MissDrop silently drops unmatched packets (OpenFlow default).
	MissDrop MissPolicy = iota
	// MissController punts unmatched packets to the controller.
	MissController
	// MissFlood floods unmatched packets (dumb-switch behaviour).
	MissFlood
)

// Controller receives packet-in events from a switch.
type Controller interface {
	// PacketIn is called synchronously with the offending packet. The
	// controller may install rules, send packets (SendPacketAs to keep
	// the packet's identity), or explicitly drop (DropPacketAs).
	PacketIn(sw *Switch, inPort PortNo, pid core.PacketID, p *packet.Packet)
}

// Stats counts switch activity.
type Stats struct {
	PacketsIn     uint64
	PacketsOut    uint64
	PacketsFlood  uint64
	PacketsDrop   uint64
	PacketIns     uint64
	PacketInBytes uint64
	RuleMods      uint64
	RuleExpiries  uint64
	// EgressDrops counts per-port copies discarded by the egress
	// pipeline.
	EgressDrops uint64
}

// port is one switch port.
type port struct {
	no      PortNo
	up      bool
	deliver func(*packet.Packet)
}

// Switch is the software dataplane. It is single-threaded: the simulation
// drives it from one goroutine.
type Switch struct {
	name       string
	dpid       uint64
	sched      *sim.Scheduler
	tables     []*Table
	ports      map[PortNo]*port
	portOrder  []PortNo
	regs       *RegisterFile
	controller Controller
	miss       MissPolicy
	observers  []func(core.Event)
	nextPID    core.PacketID
	stats      Stats
	// egressStart, when > 0, marks tables[egressStart:] as the egress
	// pipeline (OpenFlow 1.5-style): run once per output port after the
	// ingress decision, with the output port matchable. Ingress-dropped
	// packets never enter it — the paper's Sec. 3.2 gap, reproduced.
	egressStart int
	// mx holds the telemetry handles (nil until SetMetrics).
	mx *switchMetrics
	// tracer, when non-nil, samples emitted events for end-to-end
	// tracing (nil-safe: the unsampled path is one hash per event).
	tracer *tracer.Tracer
}

// New creates a switch with the given number of flow tables.
func New(name string, sched *sim.Scheduler, numTables int) *Switch {
	if numTables < 1 {
		numTables = 1
	}
	sw := &Switch{
		name:  name,
		sched: sched,
		ports: map[PortNo]*port{},
		regs:  NewRegisterFile(),
		mx:    &switchMetrics{},
	}
	for i := 0; i < numTables; i++ {
		sw.tables = append(sw.tables, &Table{sw: sw, index: i})
	}
	return sw
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// SetDPID assigns the datapath id stamped on the switch's events; use it
// when one monitor observes several switches.
func (sw *Switch) SetDPID(id uint64) { sw.dpid = id }

// DPID returns the datapath id.
func (sw *Switch) DPID() uint64 { return sw.dpid }

// Scheduler returns the switch's scheduler (shared with the simulation).
func (sw *Switch) Scheduler() *sim.Scheduler { return sw.sched }

// Stats returns a snapshot of the activity counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// Table returns flow table i, growing the pipeline if needed (Varanus
// unrolls instances into fresh tables).
func (sw *Switch) Table(i int) *Table {
	for i >= len(sw.tables) {
		sw.tables = append(sw.tables, &Table{sw: sw, index: len(sw.tables)})
	}
	return sw.tables[i]
}

// NumTables reports the pipeline depth.
func (sw *Switch) NumTables() int { return len(sw.tables) }

// Registers returns the switch's register file.
func (sw *Switch) Registers() *RegisterFile { return sw.regs }

// SetController attaches a controller and the table-0 miss policy.
func (sw *Switch) SetController(c Controller, miss MissPolicy) {
	sw.controller = c
	sw.miss = miss
}

// SetMissPolicy sets the table-0 miss policy without a controller.
func (sw *Switch) SetMissPolicy(miss MissPolicy) { sw.miss = miss }

// SetEgressStart designates tables[start:] as the egress pipeline. The
// ingress pipeline (goto chains included) is confined to tables[:start].
func (sw *Switch) SetEgressStart(start int) {
	sw.Table(start) // ensure it exists
	sw.egressStart = start
}

// AddPort attaches a port. deliver is invoked for packets emitted on the
// port; nil is allowed (a sink).
func (sw *Switch) AddPort(no PortNo, deliver func(*packet.Packet)) {
	if no == 0 {
		panic("dataplane: port 0 is reserved")
	}
	if _, dup := sw.ports[no]; dup {
		panic(fmt.Sprintf("dataplane: duplicate port %d", no))
	}
	sw.ports[no] = &port{no: no, up: true, deliver: deliver}
	sw.portOrder = append(sw.portOrder, no)
	sort.Slice(sw.portOrder, func(i, j int) bool { return sw.portOrder[i] < sw.portOrder[j] })
}

// Observe subscribes to the switch's event stream (arrivals, egress
// decisions including drops, out-of-band events).
func (sw *Switch) Observe(fn func(core.Event)) { sw.observers = append(sw.observers, fn) }

// SetTracer attaches an event tracer: every emitted event runs the
// deterministic 1-in-N sampler, and a sampled event carries its span —
// stamped ingress here, at the instant of emission — to every observer
// (local engine and exporter alike).
func (sw *Switch) SetTracer(tr *tracer.Tracer) { sw.tracer = tr }

func (sw *Switch) emit(e core.Event) {
	if sp := sw.tracer.Sample(e.SwitchID, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
		sp.Stamp(tracer.StageIngress)
		e.Trace = sp
	}
	for _, fn := range sw.observers {
		fn(e)
	}
}

// SetPortUp changes a port's link state, emitting the out-of-band event
// switch programs and monitors can react to (Sec. 2.4).
func (sw *Switch) SetPortUp(no PortNo, up bool) {
	pt := sw.ports[no]
	if pt == nil || pt.up == up {
		return
	}
	pt.up = up
	kind := packet.OOBLinkUp
	if !up {
		kind = packet.OOBLinkDown
	}
	sw.emit(core.Event{
		Kind: core.KindOutOfBand, Time: sw.sched.Now(), SwitchID: sw.dpid,
		OOBKind: kind, OOBPort: uint64(no),
	})
}

// PortUp reports a port's link state.
func (sw *Switch) PortUp(no PortNo) bool {
	pt := sw.ports[no]
	return pt != nil && pt.up
}

// Inject runs one packet through the switch: arrival event, pipeline,
// egress events (one per output port, or one drop event), and delivery.
// It returns the packet's ID.
func (sw *Switch) Inject(inPort PortNo, p *packet.Packet) core.PacketID {
	pt := sw.ports[inPort]
	if pt == nil || !pt.up {
		return 0 // packets do not arrive on absent or downed ports
	}
	sw.nextPID++
	pid := sw.nextPID
	sw.stats.PacketsIn++
	sw.mx.packetsIn.Inc()
	now := sw.sched.Now()
	sw.emit(core.Event{
		Kind: core.KindArrival, Time: now, PacketID: pid, SwitchID: sw.dpid,
		Packet: p, InPort: uint64(inPort),
	})
	work := p.Clone()
	outs, verdict := sw.runPipeline(work, inPort)
	switch verdict {
	case verdictPunted:
		// The controller owns the packet now; it will emit egress events
		// via SendPacketAs / DropPacketAs.
	case verdictDropped:
		sw.emitDrop(pid, work, inPort)
	case verdictForward:
		if len(outs) == 0 {
			sw.emitDrop(pid, work, inPort)
			return pid
		}
		sw.emitOutputs(pid, work, inPort, outs)
	}
	return pid
}

type verdict uint8

const (
	verdictForward verdict = iota
	verdictDropped
	verdictPunted
)

// maxPipelineSteps caps goto chains so a mis-programmed pipeline cannot
// loop forever. Varanus legitimately builds very deep pipelines, so the
// cap is generous.
const maxPipelineSteps = 1 << 16

// runPipeline executes the match-action pipeline over the (mutable) work
// packet.
func (sw *Switch) runPipeline(work *packet.Packet, inPort PortNo) ([]PortNo, verdict) {
	var outs []PortNo
	ti := 0
	limit := len(sw.tables)
	if sw.egressStart > 0 && sw.egressStart < limit {
		limit = sw.egressStart
	}
	for steps := 0; steps < maxPipelineSteps; steps++ {
		if ti >= limit {
			break
		}
		table := sw.tables[ti]
		rule := table.lookup(work, inPort)
		if rule == nil {
			sw.mx.tableMiss(ti)
			if ti == 0 && len(outs) == 0 {
				switch sw.miss {
				case MissController:
					sw.packetIn(inPort, work)
					return nil, verdictPunted
				case MissFlood:
					return sw.floodPorts(inPort), verdictForward
				}
			}
			break
		}
		table.hit(rule, 1)
		next := -1
		for _, a := range rule.Actions {
			switch a.Kind {
			case ActOutput:
				outs = append(outs, a.Port)
			case ActFlood:
				outs = append(outs, sw.floodPorts(inPort)...)
			case ActDrop:
				return nil, verdictDropped
			case ActSetField:
				if err := applySetField(work, a.Field, a.Value); err != nil {
					// A rewrite on a packet lacking the layer acts as a
					// no-op drop: the rule was installed for a different
					// traffic class.
					return nil, verdictDropped
				}
			case ActController:
				sw.packetIn(inPort, work)
			case ActLearn:
				sw.applyLearn(a.Learn, work, inPort)
			case ActGoto:
				next = a.Table
			}
		}
		if next < 0 {
			break
		}
		ti = next
	}
	return outs, verdictForward
}

// floodPorts lists all up ports except the ingress port.
func (sw *Switch) floodPorts(inPort PortNo) []PortNo {
	var outs []PortNo
	for _, no := range sw.portOrder {
		if no == inPort {
			continue
		}
		if sw.ports[no].up {
			outs = append(outs, no)
		}
	}
	return outs
}

// packetIn punts to the controller, counting redirected bytes — the
// external-monitoring volume cost of Sec. 1.
func (sw *Switch) packetIn(inPort PortNo, p *packet.Packet) {
	sw.stats.PacketIns++
	sw.mx.packetIns.Inc()
	if data, err := p.Encode(); err == nil {
		sw.stats.PacketInBytes += uint64(len(data))
	}
	if sw.controller != nil {
		sw.controller.PacketIn(sw, inPort, sw.nextPID, p)
	}
}

// applyLearn installs the rule a learn action describes, instantiated
// from the current packet.
func (sw *Switch) applyLearn(spec *LearnSpec, p *packet.Packet, inPort PortNo) {
	rule := &Rule{
		Priority:    spec.Priority,
		IdleTimeout: spec.IdleTimeout,
		HardTimeout: spec.HardTimeout,
		Actions:     append([]Action(nil), spec.Actions...),
	}
	for _, lm := range spec.Matches {
		val := lm.Value
		if lm.FromField != packet.FieldInvalid {
			v, ok := p.Field(lm.FromField)
			if !ok {
				return // cannot instantiate: packet lacks the source field
			}
			val = v
		}
		rule.Match.Fields = append(rule.Match.Fields, FieldMatch{Field: lm.DstField, Value: val})
	}
	if spec.OutputFromInPort {
		rule.Actions = append(rule.Actions, Output(inPort))
	}
	// Open vSwitch learn semantics: re-learning an existing rule replaces
	// it (refreshing its timeouts) instead of stacking duplicates.
	table := sw.Table(spec.Table)
	for _, existing := range table.Rules() {
		if existing.Priority == rule.Priority && matchEqual(existing.Match, rule.Match) {
			table.Remove(existing)
			break
		}
	}
	table.Add(rule)
	sw.mx.learns.Inc()
}

// matchEqual compares two matches structurally.
func matchEqual(a, b Match) bool {
	if a.InPort != b.InPort || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}

// emitOutputs emits egress events and delivers the packet.
func (sw *Switch) emitOutputs(pid core.PacketID, work *packet.Packet, inPort PortNo, outs []PortNo) {
	// Deduplicate output ports while preserving order.
	seen := map[PortNo]bool{}
	uniq := outs[:0]
	for _, o := range outs {
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
		}
	}
	multi := len(uniq) > 1
	now := sw.sched.Now()
	for _, o := range uniq {
		copyOut := work
		if sw.egressStart > 0 {
			var dropped bool
			copyOut, dropped = sw.runEgress(work, inPort, o)
			if dropped {
				sw.stats.EgressDrops++
				sw.mx.egressDrops.Inc()
				sw.emit(core.Event{
					Kind: core.KindEgress, Time: now, PacketID: pid, SwitchID: sw.dpid,
					Packet: copyOut, InPort: uint64(inPort), Dropped: true,
				})
				continue
			}
		}
		sw.stats.PacketsOut++
		sw.mx.packetsOut.Inc()
		if multi {
			sw.stats.PacketsFlood++
			sw.mx.packetsFlood.Inc()
		}
		sw.emit(core.Event{
			Kind: core.KindEgress, Time: now, PacketID: pid, SwitchID: sw.dpid,
			Packet: copyOut, InPort: uint64(inPort), OutPort: uint64(o),
			Multicast: multi,
		})
		if pt := sw.ports[o]; pt != nil && pt.up && pt.deliver != nil {
			pt.deliver(copyOut)
		}
	}
}

// runEgress executes the egress pipeline for one output-port copy,
// returning the (possibly rewritten) copy and whether it was discarded.
// Supported egress actions: SetField, Drop, Goto (within the egress
// range); anything else is ignored.
func (sw *Switch) runEgress(work *packet.Packet, inPort, outPort PortNo) (*packet.Packet, bool) {
	copyOut := work
	cloned := false
	ti := sw.egressStart
	for steps := 0; steps < maxPipelineSteps; steps++ {
		if ti >= len(sw.tables) {
			break
		}
		var hitRule *Rule
		for _, r := range sw.tables[ti].rules {
			if r.Match.MatchesEgress(copyOut, inPort, outPort) {
				hitRule = r
				break
			}
		}
		if hitRule == nil {
			sw.mx.tableMiss(ti)
			break
		}
		sw.tables[ti].hit(hitRule, 1)
		next := -1
		for _, a := range hitRule.Actions {
			switch a.Kind {
			case ActDrop:
				return copyOut, true
			case ActSetField:
				if !cloned {
					copyOut = work.Clone()
					cloned = true
				}
				if err := applySetField(copyOut, a.Field, a.Value); err != nil {
					return copyOut, true
				}
			case ActGoto:
				if a.Table > ti {
					next = a.Table
				}
			}
		}
		if next < 0 {
			break
		}
		ti = next
	}
	return copyOut, false
}

func (sw *Switch) emitDrop(pid core.PacketID, work *packet.Packet, inPort PortNo) {
	sw.stats.PacketsDrop++
	sw.mx.packetsDrop.Inc()
	sw.emit(core.Event{
		Kind: core.KindEgress, Time: sw.sched.Now(), PacketID: pid, SwitchID: sw.dpid,
		Packet: work, InPort: uint64(inPort), Dropped: true,
	})
}

// SendPacket emits a switch-originated packet (e.g. a proxy's ARP reply)
// on a port, with a fresh packet identity.
func (sw *Switch) SendPacket(out PortNo, p *packet.Packet) core.PacketID {
	sw.nextPID++
	sw.emitOutputs(sw.nextPID, p, 0, []PortNo{out})
	return sw.nextPID
}

// SendPacketAs emits a packet under an existing identity — the
// controller's way to resume a punted packet without severing the
// arrival/egress correlation (Feature 5).
func (sw *Switch) SendPacketAs(pid core.PacketID, inPort PortNo, outs []PortNo, p *packet.Packet) {
	sw.emitOutputs(pid, p, inPort, outs)
}

// FloodPacketAs floods a punted packet under its original identity.
func (sw *Switch) FloodPacketAs(pid core.PacketID, inPort PortNo, p *packet.Packet) {
	sw.emitOutputs(pid, p, inPort, sw.floodPorts(inPort))
}

// DropPacketAs records the controller's decision to drop a punted packet,
// keeping the drop observable to monitors.
func (sw *Switch) DropPacketAs(pid core.PacketID, inPort PortNo, p *packet.Packet) {
	sw.emitDrop(pid, p, inPort)
}
