package dataplane

import (
	"fmt"
	"time"

	"switchmon/internal/packet"
)

// ActionKind discriminates rule actions.
type ActionKind uint8

// Action kinds.
const (
	// ActOutput emits the packet on a specific port.
	ActOutput ActionKind = iota
	// ActFlood emits the packet on every port except the ingress port.
	ActFlood
	// ActDrop explicitly drops the packet (ending the pipeline).
	ActDrop
	// ActGoto continues matching at a later table.
	ActGoto
	// ActSetField rewrites a header field (NAT and friends).
	ActSetField
	// ActController punts the packet to the controller (packet-in).
	ActController
	// ActLearn installs a new rule derived from the current packet — the
	// Open vSwitch "learn" action FAST builds on.
	ActLearn
)

// Action is one instruction of a rule. Exactly the fields relevant to its
// Kind are meaningful.
type Action struct {
	Kind  ActionKind
	Port  PortNo       // ActOutput
	Table int          // ActGoto
	Field packet.Field // ActSetField
	Value packet.Value // ActSetField
	Learn *LearnSpec   // ActLearn
}

// Convenience constructors.

// Output returns an action emitting on port.
func Output(p PortNo) Action { return Action{Kind: ActOutput, Port: p} }

// Flood returns an all-ports-but-ingress action.
func Flood() Action { return Action{Kind: ActFlood} }

// Drop returns an explicit drop action.
func Drop() Action { return Action{Kind: ActDrop} }

// Goto returns a continue-at-table action.
func Goto(table int) Action { return Action{Kind: ActGoto, Table: table} }

// SetField returns a header rewrite action.
func SetField(f packet.Field, v packet.Value) Action {
	return Action{Kind: ActSetField, Field: f, Value: v}
}

// ToController returns a packet-in action.
func ToController() Action { return Action{Kind: ActController} }

// LearnAction returns a learn action.
func LearnAction(spec *LearnSpec) Action { return Action{Kind: ActLearn, Learn: spec} }

// LearnMatch is one match-template entry of a learn action: the installed
// rule will match DstField either against a literal Value or against the
// triggering packet's FromField value.
type LearnMatch struct {
	DstField  packet.Field
	FromField packet.Field // 0 (FieldInvalid): use Value instead
	Value     packet.Value
}

// LearnSpec describes the rule a learn action installs.
type LearnSpec struct {
	Table       int
	Priority    int
	IdleTimeout time.Duration
	HardTimeout time.Duration
	Matches     []LearnMatch
	// Actions are literal actions for the installed rule.
	Actions []Action
	// OutputFromInPort adds an Output action whose port is the triggering
	// packet's ingress port (the MAC-learning idiom).
	OutputFromInPort bool
}

// applySetField rewrites one header field in place. Unsupported fields
// are rejected: a rule that compiles must be executable.
func applySetField(p *packet.Packet, f packet.Field, v packet.Value) error {
	switch f {
	case packet.FieldEthSrc:
		if p.Eth == nil {
			return fmt.Errorf("dataplane: set %v on packet without Ethernet", f)
		}
		p.Eth.Src = packet.MACFromUint64(v.Uint64())
	case packet.FieldEthDst:
		if p.Eth == nil {
			return fmt.Errorf("dataplane: set %v on packet without Ethernet", f)
		}
		p.Eth.Dst = packet.MACFromUint64(v.Uint64())
	case packet.FieldIPSrc:
		if p.IPv4 == nil {
			return fmt.Errorf("dataplane: set %v on packet without IPv4", f)
		}
		p.IPv4.Src = packet.IPv4FromUint32(uint32(v.Uint64()))
	case packet.FieldIPDst:
		if p.IPv4 == nil {
			return fmt.Errorf("dataplane: set %v on packet without IPv4", f)
		}
		p.IPv4.Dst = packet.IPv4FromUint32(uint32(v.Uint64()))
	case packet.FieldSrcPort:
		switch {
		case p.TCP != nil:
			p.TCP.SrcPort = uint16(v.Uint64())
		case p.UDP != nil:
			p.UDP.SrcPort = uint16(v.Uint64())
		default:
			return fmt.Errorf("dataplane: set %v on packet without L4", f)
		}
	case packet.FieldDstPort:
		switch {
		case p.TCP != nil:
			p.TCP.DstPort = uint16(v.Uint64())
		case p.UDP != nil:
			p.UDP.DstPort = uint16(v.Uint64())
		default:
			return fmt.Errorf("dataplane: set %v on packet without L4", f)
		}
	case packet.FieldIPTTL:
		if p.IPv4 == nil {
			return fmt.Errorf("dataplane: set %v on packet without IPv4", f)
		}
		p.IPv4.TTL = uint8(v.Uint64())
	default:
		return fmt.Errorf("dataplane: field %v is not rewritable", f)
	}
	return nil
}
