package dataplane

import (
	"strconv"

	"switchmon/internal/obs"
)

// switchMetrics holds one switch's telemetry handles, resolved at
// SetMetrics time so the packet path only touches atomic instruments.
// Per-table hit/miss counters are registered lazily (the Varanus
// backend grows pipelines at run time); growth happens on the packet
// path only the first time a new table index is seen.
type switchMetrics struct {
	reg    *obs.Registry
	labels []obs.Label

	packetsIn    *obs.Counter
	packetsOut   *obs.Counter
	packetsDrop  *obs.Counter
	packetsFlood *obs.Counter
	packetIns    *obs.Counter
	egressDrops  *obs.Counter
	learns       *obs.Counter
	ruleMods     *obs.Counter
	ruleExpiries *obs.Counter

	tableHits   []*obs.Counter
	tableMisses []*obs.Counter
}

// SetMetrics wires the switch into the telemetry registry. Every series
// carries a switch=<name> label, so several switches (a chassis, the
// multi-switch collector) can share one registry. Call it once, before
// traffic; nil disables instrumentation again.
//
// The switch always carries a non-nil switchMetrics so packet-path call
// sites can dereference counter fields unconditionally: with no registry
// the handles are nil and every record is an inert nil-receiver call.
func (sw *Switch) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		sw.mx = &switchMetrics{}
		return
	}
	l := []obs.Label{obs.L("switch", sw.name)}
	mx := &switchMetrics{
		reg:          reg,
		labels:       l,
		packetsIn:    reg.Counter("switchmon_dataplane_packets_in_total", "Packets injected into the switch.", l...),
		packetsOut:   reg.Counter("switchmon_dataplane_packets_out_total", "Per-port packet emissions.", l...),
		packetsDrop:  reg.Counter("switchmon_dataplane_packets_dropped_total", "Ingress-pipeline drop decisions.", l...),
		packetsFlood: reg.Counter("switchmon_dataplane_packets_flood_total", "Per-port emissions that were part of a multi-port output.", l...),
		packetIns:    reg.Counter("switchmon_dataplane_packetins_total", "Packets punted to the controller.", l...),
		egressDrops:  reg.Counter("switchmon_dataplane_egress_drops_total", "Per-port copies discarded by the egress pipeline.", l...),
		learns:       reg.Counter("switchmon_dataplane_learn_installs_total", "Rules installed by learn actions.", l...),
		ruleMods:     reg.Counter("switchmon_dataplane_rule_mods_total", "Flow-table rule installs and removals.", l...),
		ruleExpiries: reg.Counter("switchmon_dataplane_rule_expiries_total", "Rules removed by idle or hard timeout.", l...),
	}
	for i := range sw.tables {
		mx.growTables(i)
	}
	sw.mx = mx
}

// growTables ensures per-table counters exist through index i.
func (mx *switchMetrics) growTables(i int) {
	for len(mx.tableHits) <= i {
		t := strconv.Itoa(len(mx.tableHits))
		ls := append(append([]obs.Label(nil), mx.labels...), obs.L("table", t))
		mx.tableHits = append(mx.tableHits,
			mx.reg.Counter("switchmon_dataplane_table_hits_total", "Flow-table rule matches.", ls...))
		mx.tableMisses = append(mx.tableMisses,
			mx.reg.Counter("switchmon_dataplane_table_misses_total", "Flow-table lookups matching no rule.", ls...))
	}
}

// tableHit records a rule match in table i.
func (mx *switchMetrics) tableHit(i int) {
	if mx == nil || mx.reg == nil {
		return
	}
	mx.growTables(i)
	mx.tableHits[i].Inc()
}

// tableMiss records a missed lookup in table i.
func (mx *switchMetrics) tableMiss(i int) {
	if mx == nil || mx.reg == nil {
		return
	}
	mx.growTables(i)
	mx.tableMisses[i].Inc()
}
