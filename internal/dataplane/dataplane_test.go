package dataplane

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("10.0.0.2")
)

// testSwitch builds a switch with n ports whose deliveries are recorded.
func testSwitch(t *testing.T, nPorts, nTables int) (*Switch, *sim.Scheduler, map[PortNo][]*packet.Packet) {
	t.Helper()
	sched := sim.NewScheduler()
	sw := New("s1", sched, nTables)
	delivered := map[PortNo][]*packet.Packet{}
	for i := 1; i <= nPorts; i++ {
		no := PortNo(i)
		sw.AddPort(no, func(p *packet.Packet) { delivered[no] = append(delivered[no], p) })
	}
	return sw, sched, delivered
}

func tcpPkt() *packet.Packet {
	return packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
}

func TestExactMatchForwarding(t *testing.T) {
	sw, _, delivered := testSwitch(t, 3, 1)
	sw.Table(0).Add(&Rule{
		Priority: 10,
		Match:    MatchOn(FM(packet.FieldIPDst, ipB.Uint64())),
		Actions:  []Action{Output(2)},
	})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 || len(delivered[3]) != 0 {
		t.Fatalf("delivered = %v", delivered)
	}
	st := sw.Stats()
	if st.PacketsIn != 1 || st.PacketsOut != 1 || st.PacketsDrop != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPriorityOrderFirstMatchWins(t *testing.T) {
	sw, _, delivered := testSwitch(t, 3, 1)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(3)}})
	sw.Table(0).Add(&Rule{Priority: 100, Actions: []Action{Output(2)}})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 || len(delivered[3]) != 0 {
		t.Fatalf("priority not respected: %v", delivered)
	}
}

func TestMissPolicyDrop(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	var drops int
	sw.Observe(func(e core.Event) {
		if e.Kind == core.KindEgress && e.Dropped {
			drops++
		}
	})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 0 || drops != 1 {
		t.Fatalf("delivered=%v drops=%d", delivered, drops)
	}
	if sw.Stats().PacketsDrop != 1 {
		t.Fatalf("stats = %+v", sw.Stats())
	}
}

func TestMissPolicyFlood(t *testing.T) {
	sw, _, delivered := testSwitch(t, 4, 1)
	sw.SetMissPolicy(MissFlood)
	var multi int
	sw.Observe(func(e core.Event) {
		if e.Kind == core.KindEgress && e.Multicast {
			multi++
		}
	})
	sw.Inject(1, tcpPkt())
	if len(delivered[1]) != 0 || len(delivered[2]) != 1 || len(delivered[3]) != 1 || len(delivered[4]) != 1 {
		t.Fatalf("flood delivered = %v", delivered)
	}
	if multi != 3 {
		t.Fatalf("multicast egress events = %d, want 3", multi)
	}
}

func TestExplicitDropAction(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	sw.Table(0).Add(&Rule{Priority: 5, Actions: []Action{Drop()}})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 0 || sw.Stats().PacketsDrop != 1 {
		t.Fatal("explicit drop failed")
	}
}

func TestGotoChainsTables(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 3)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Goto(1)}})
	sw.Table(1).Add(&Rule{Priority: 1, Actions: []Action{Goto(2)}})
	sw.Table(2).Add(&Rule{Priority: 1, Actions: []Action{Output(2)}})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 {
		t.Fatal("goto chain did not forward")
	}
}

func TestSetFieldRewrites(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	nat := packet.MustIPv4("198.51.100.1")
	sw.Table(0).Add(&Rule{
		Priority: 1,
		Actions: []Action{
			SetField(packet.FieldIPSrc, packet.Num(nat.Uint64())),
			SetField(packet.FieldSrcPort, packet.Num(61000)),
			Output(2),
		},
	})
	orig := tcpPkt()
	sw.Inject(1, orig)
	got := delivered[2][0]
	if got.IPv4.Src != nat || got.TCP.SrcPort != 61000 {
		t.Fatalf("rewrite failed: %s", got.Summary())
	}
	if orig.IPv4.Src != ipA {
		t.Fatal("original packet mutated")
	}
}

func TestEgressEventCarriesRewrittenPacket(t *testing.T) {
	// The NAT property depends on the egress observation seeing the
	// translated header while sharing the arrival's PacketID.
	sw, _, _ := testSwitch(t, 2, 1)
	nat := packet.MustIPv4("198.51.100.1")
	sw.Table(0).Add(&Rule{
		Priority: 1,
		Actions:  []Action{SetField(packet.FieldIPSrc, packet.Num(nat.Uint64())), Output(2)},
	})
	var arrival, egress core.Event
	sw.Observe(func(e core.Event) {
		switch e.Kind {
		case core.KindArrival:
			arrival = e
		case core.KindEgress:
			egress = e
		}
	})
	sw.Inject(1, tcpPkt())
	if arrival.PacketID != egress.PacketID {
		t.Fatal("packet identity broken across pipeline")
	}
	if arrival.Packet.IPv4.Src != ipA || egress.Packet.IPv4.Src != nat {
		t.Fatal("events do not show pre/post rewrite views")
	}
}

func TestLearnActionInstallsRule(t *testing.T) {
	// The MAC-learning idiom: learn a reverse rule matching eth.dst
	// against the current source, outputting on the ingress port.
	sw, _, delivered := testSwitch(t, 3, 2)
	sw.Table(0).Add(&Rule{
		Priority: 1,
		Actions: []Action{
			LearnAction(&LearnSpec{
				Table:    1,
				Priority: 10,
				Matches: []LearnMatch{
					{DstField: packet.FieldEthDst, FromField: packet.FieldEthSrc},
				},
				OutputFromInPort: true,
			}),
			Flood(),
		},
	})
	sw.Inject(1, tcpPkt()) // learns macA@1 into table 1
	if sw.Table(1).Len() != 1 {
		t.Fatalf("table 1 has %d rules, want 1", sw.Table(1).Len())
	}
	r := sw.Table(1).Rules()[0]
	want := FieldMatch{Field: packet.FieldEthDst, Value: packet.Num(macA.Uint64())}
	if len(r.Match.Fields) != 1 || r.Match.Fields[0] != want {
		t.Fatalf("learned match = %v", r.Match)
	}
	if len(r.Actions) != 1 || r.Actions[0].Kind != ActOutput || r.Actions[0].Port != 1 {
		t.Fatalf("learned actions = %v", r.Actions)
	}
	_ = delivered
}

func TestRuleHardTimeout(t *testing.T) {
	sw, sched, _ := testSwitch(t, 2, 1)
	sw.Table(0).Add(&Rule{Priority: 1, HardTimeout: 5 * time.Second, Actions: []Action{Output(2)}})
	sched.RunFor(6 * time.Second)
	if sw.Table(0).Len() != 0 {
		t.Fatal("hard timeout did not expire rule")
	}
	if sw.Stats().RuleExpiries != 1 {
		t.Fatalf("stats = %+v", sw.Stats())
	}
}

func TestRuleIdleTimeoutRefreshedByTraffic(t *testing.T) {
	sw, sched, _ := testSwitch(t, 2, 1)
	sw.Table(0).Add(&Rule{Priority: 1, IdleTimeout: 5 * time.Second, Actions: []Action{Output(2)}})
	for i := 0; i < 3; i++ {
		sched.RunFor(3 * time.Second)
		sw.Inject(1, tcpPkt()) // keeps the rule warm
	}
	if sw.Table(0).Len() != 1 {
		t.Fatal("idle rule expired despite traffic")
	}
	sched.RunFor(6 * time.Second)
	if sw.Table(0).Len() != 0 {
		t.Fatal("idle rule survived an idle period")
	}
}

func TestControllerPuntAndResume(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	var punted []core.PacketID
	ctrl := controllerFunc(func(s *Switch, inPort PortNo, pid core.PacketID, p *packet.Packet) {
		punted = append(punted, pid)
		s.SendPacketAs(pid, inPort, []PortNo{2}, p)
	})
	sw.SetController(ctrl, MissController)
	var events []core.Event
	sw.Observe(func(e core.Event) { events = append(events, e) })
	pid := sw.Inject(1, tcpPkt())
	if len(punted) != 1 || punted[0] != pid {
		t.Fatalf("punted = %v, want [%d]", punted, pid)
	}
	if len(delivered[2]) != 1 {
		t.Fatal("controller resume did not deliver")
	}
	// Identity must be preserved across the punt.
	if len(events) != 2 || events[1].Kind != core.KindEgress || events[1].PacketID != pid {
		t.Fatalf("events = %+v", events)
	}
	if sw.Stats().PacketIns != 1 || sw.Stats().PacketInBytes == 0 {
		t.Fatalf("stats = %+v", sw.Stats())
	}
}

type controllerFunc func(*Switch, PortNo, core.PacketID, *packet.Packet)

func (f controllerFunc) PacketIn(sw *Switch, inPort PortNo, pid core.PacketID, p *packet.Packet) {
	f(sw, inPort, pid, p)
}

func TestControllerExplicitDropObservable(t *testing.T) {
	sw, _, _ := testSwitch(t, 2, 1)
	ctrl := controllerFunc(func(s *Switch, inPort PortNo, pid core.PacketID, p *packet.Packet) {
		s.DropPacketAs(pid, inPort, p)
	})
	sw.SetController(ctrl, MissController)
	var drops int
	sw.Observe(func(e core.Event) {
		if e.Kind == core.KindEgress && e.Dropped {
			drops++
		}
	})
	sw.Inject(1, tcpPkt())
	if drops != 1 {
		t.Fatalf("controller drop not observable (drops=%d)", drops)
	}
}

func TestPortDownBehaviour(t *testing.T) {
	sw, _, delivered := testSwitch(t, 3, 1)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2)}})
	var oob []core.Event
	var egress int
	sw.Observe(func(e core.Event) {
		switch e.Kind {
		case core.KindOutOfBand:
			oob = append(oob, e)
		case core.KindEgress:
			egress++
		}
	})
	sw.SetPortUp(2, false)
	if len(oob) != 1 || oob[0].OOBKind != packet.OOBLinkDown || oob[0].OOBPort != 2 {
		t.Fatalf("oob = %+v", oob)
	}
	// The switch still *decides* to output on port 2 (observable egress)
	// but nothing is delivered on the downed link.
	sw.Inject(1, tcpPkt())
	if egress != 1 || len(delivered[2]) != 0 {
		t.Fatalf("egress=%d delivered=%v", egress, delivered)
	}
	// Arrivals on a downed port are impossible.
	sw.SetPortUp(1, false)
	if pid := sw.Inject(1, tcpPkt()); pid != 0 {
		t.Fatal("packet arrived on downed port")
	}
	// Re-raising emits link-up; duplicate transitions are silent.
	sw.SetPortUp(2, true)
	sw.SetPortUp(2, true)
	if len(oob) != 3 || oob[2].OOBKind != packet.OOBLinkUp {
		t.Fatalf("oob after up = %+v", oob)
	}
	if !sw.PortUp(2) || sw.PortUp(1) {
		t.Fatal("PortUp state wrong")
	}
}

func TestFloodSkipsDownedPorts(t *testing.T) {
	sw, _, delivered := testSwitch(t, 4, 1)
	sw.SetMissPolicy(MissFlood)
	sw.SetPortUp(3, false)
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 || len(delivered[3]) != 0 || len(delivered[4]) != 1 {
		t.Fatalf("flood = %v", delivered)
	}
}

func TestRemoveByCookie(t *testing.T) {
	sw, _, _ := testSwitch(t, 2, 1)
	for i := 0; i < 5; i++ {
		sw.Table(0).Add(&Rule{Priority: i, Cookie: uint64(i % 2), Actions: []Action{Output(2)}})
	}
	if n := sw.Table(0).RemoveByCookie(1); n != 2 {
		t.Fatalf("RemoveByCookie = %d, want 2", n)
	}
	if sw.Table(0).Len() != 3 {
		t.Fatalf("remaining = %d", sw.Table(0).Len())
	}
	if n := sw.Table(0).RemoveByCookie(99); n != 0 {
		t.Fatalf("RemoveByCookie(99) = %d", n)
	}
}

func TestRegisterFile(t *testing.T) {
	rf := NewRegisterFile()
	rf.Define("conn", 128)
	if rf.Size("conn") != 128 || rf.Size("nope") != 0 {
		t.Fatal("Size wrong")
	}
	idx := rf.IndexOf("conn", 1<<63+17)
	rf.Write("conn", idx, 42)
	if rf.Read("conn", idx) != 42 {
		t.Fatal("register readback failed")
	}
	if rf.Ops != 2 {
		t.Fatalf("Ops = %d, want 2", rf.Ops)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IndexOf on undefined array did not panic")
		}
	}()
	rf.IndexOf("nope", 1)
}

func TestSendPacketFreshIdentity(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	var ids []core.PacketID
	sw.Observe(func(e core.Event) { ids = append(ids, e.PacketID) })
	pid := sw.SendPacket(2, tcpPkt())
	if pid == 0 || len(delivered[2]) != 1 {
		t.Fatal("SendPacket failed")
	}
	if len(ids) != 1 || ids[0] != pid {
		t.Fatalf("ids = %v", ids)
	}
}

func TestDuplicateOutputsCollapse(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2), Output(2)}})
	var egress, multi int
	sw.Observe(func(e core.Event) {
		if e.Kind == core.KindEgress {
			egress++
			if e.Multicast {
				multi++
			}
		}
	})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 || egress != 1 || multi != 0 {
		t.Fatalf("dup outputs: delivered=%d egress=%d multi=%d", len(delivered[2]), egress, multi)
	}
}

func TestTableGrowsOnDemand(t *testing.T) {
	sw, _, _ := testSwitch(t, 2, 1)
	sw.Table(7).Add(&Rule{Priority: 1, Actions: []Action{Drop()}})
	if sw.NumTables() != 8 {
		t.Fatalf("NumTables = %d, want 8", sw.NumTables())
	}
}

func TestMatchStringAndRuleString(t *testing.T) {
	m := Match{InPort: 3, Fields: []FieldMatch{FM(packet.FieldIPSrc, ipA.Uint64())}}
	if s := m.String(); s != "in_port=3,ip.src=167772161" {
		t.Fatalf("Match.String = %q", s)
	}
	if (Match{}).String() != "any" {
		t.Fatal("empty match string")
	}
	r := &Rule{Priority: 9, Match: m, Actions: []Action{Drop()}}
	if r.String() == "" {
		t.Fatal("Rule.String empty")
	}
}

func TestSetFieldOnMissingLayerDrops(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	sw.Table(0).Add(&Rule{
		Priority: 1,
		Actions:  []Action{SetField(packet.FieldSrcPort, packet.Num(1)), Output(2)},
	})
	arp := packet.NewARPRequest(macA, ipA, ipB)
	sw.Inject(1, arp)
	if len(delivered[2]) != 0 || sw.Stats().PacketsDrop != 1 {
		t.Fatal("set-field on missing layer should drop")
	}
}
