package dataplane

import (
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/packet"
)

// cv reads a dataplane counter for switch s1, with optional extra labels.
func cv(reg *obs.Registry, name string, extra ...obs.Label) uint64 {
	ls := append([]obs.Label{obs.L("switch", "s1")}, extra...)
	return reg.Snapshot().CounterValue(name, ls...)
}

func TestSwitchMetricsCounters(t *testing.T) {
	sw, sched, delivered := testSwitch(t, 3, 2)
	reg := obs.NewRegistry()
	sw.SetMetrics(reg)
	sw.SetEgressStart(1)

	// Ingress: forward to port 2, learning the reverse path; egress ACL
	// blocks port 3 so floods shed one copy.
	sw.Table(0).Add(&Rule{
		Priority:    10,
		Match:       MatchOn(FM(packet.FieldIPDst, ipB.Uint64())),
		IdleTimeout: 2 * time.Second,
		Actions: []Action{
			LearnAction(&LearnSpec{
				Table:            0,
				Priority:         20,
				Matches:          []LearnMatch{{DstField: packet.FieldEthDst, FromField: packet.FieldEthSrc}},
				OutputFromInPort: true,
			}),
			Output(2),
		},
	})
	sw.Table(1).Add(&Rule{Priority: 5, Match: Match{OutPort: 3}, Actions: []Action{Drop()}})

	sw.Inject(1, tcpPkt()) // hit: forwarded + learn install
	arp := packet.NewARPRequest(macA, ipA, ipA)
	sw.Inject(1, arp) // miss in table 0: dropped

	if got := cv(reg, "switchmon_dataplane_packets_in_total"); got != 2 {
		t.Fatalf("packets_in = %d, want 2", got)
	}
	if got := cv(reg, "switchmon_dataplane_packets_out_total"); got != 1 {
		t.Fatalf("packets_out = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_packets_dropped_total"); got != 1 {
		t.Fatalf("packets_dropped = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_learn_installs_total"); got != 1 {
		t.Fatalf("learn_installs = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_table_hits_total", obs.L("table", "0")); got != 1 {
		t.Fatalf("table 0 hits = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_table_misses_total", obs.L("table", "0")); got != 1 {
		t.Fatalf("table 0 misses = %d, want 1", got)
	}
	// The forwarded packet traversed the egress table without matching
	// the OutPort=3 ACL: one egress-table miss, no egress drop yet.
	if got := cv(reg, "switchmon_dataplane_table_misses_total", obs.L("table", "1")); got != 1 {
		t.Fatalf("table 1 misses = %d, want 1", got)
	}

	// Flood from port 2 (table-0 miss under MissFlood): copies for ports
	// 1 and 3; the egress ACL drops the port-3 copy (an egress-table hit)
	// while port 1 delivers.
	sw.SetMissPolicy(MissFlood)
	sw.Inject(2, packet.NewARPRequest(macB, ipB, ipA))
	if got := cv(reg, "switchmon_dataplane_egress_drops_total"); got != 1 {
		t.Fatalf("egress_drops = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_packets_flood_total"); got != 1 {
		t.Fatalf("packets_flood = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_table_hits_total", obs.L("table", "1")); got != 1 {
		t.Fatalf("table 1 hits = %d, want 1", got)
	}

	// Idle expiry shows up as a rule expiry, and the rule-mod counter has
	// tracked every install and removal.
	mods := cv(reg, "switchmon_dataplane_rule_mods_total")
	sched.RunFor(3 * time.Second)
	if got := cv(reg, "switchmon_dataplane_rule_expiries_total"); got != 1 {
		t.Fatalf("rule_expiries = %d, want 1", got)
	}
	if got := cv(reg, "switchmon_dataplane_rule_mods_total"); got != mods+1 {
		t.Fatalf("rule_mods = %d, want %d", got, mods+1)
	}
	if got := sw.Stats().RuleMods; got != mods+1 {
		t.Fatalf("Stats.RuleMods = %d diverges from counter %d", got, mods+1)
	}
	_ = delivered
}

func TestSwitchMetricsDisabledIsInert(t *testing.T) {
	sw, _, delivered := testSwitch(t, 2, 1)
	// Never SetMetrics: every instrumented site must be a no-op.
	sw.Table(0).Add(&Rule{Priority: 1, Actions: []Action{Output(2)}})
	sw.Inject(1, tcpPkt())
	if len(delivered[2]) != 1 {
		t.Fatal("forwarding broken without metrics")
	}
	// Explicitly disabling after enabling restores the inert state.
	reg := obs.NewRegistry()
	sw.SetMetrics(reg)
	sw.Inject(1, tcpPkt())
	sw.SetMetrics(nil)
	sw.Inject(1, tcpPkt())
	if got := cv(reg, "switchmon_dataplane_packets_in_total"); got != 1 {
		t.Fatalf("packets_in after disable = %d, want 1", got)
	}
}
