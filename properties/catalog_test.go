// Package properties_test pins the shipped DSL rendering of the property
// catalogue: the file must parse back to exactly the built-in catalogue.
// Regenerate catalog.properties with dsl.FormatAll over the catalogue if
// this test fails after an intentional catalogue change.
package properties_test

import (
	"os"
	"reflect"
	"testing"

	"switchmon/internal/dsl"
	"switchmon/internal/property"
)

func TestShippedCatalogueMatchesBuiltin(t *testing.T) {
	src, err := os.ReadFile("catalog.properties")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := dsl.ParseAll(string(src))
	if err != nil {
		t.Fatal(err)
	}
	entries := property.Catalog(property.DefaultParams())
	if len(parsed) != len(entries) {
		t.Fatalf("shipped file has %d properties, catalogue has %d — regenerate catalog.properties",
			len(parsed), len(entries))
	}
	for i, e := range entries {
		if !reflect.DeepEqual(e.Prop, parsed[i]) {
			t.Errorf("property %s differs between shipped file and catalogue — regenerate catalog.properties",
				e.Prop.Name)
		}
	}
}

func TestShippedCatalogueCanonical(t *testing.T) {
	src, err := os.ReadFile("catalog.properties")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := dsl.ParseAll(string(src))
	if err != nil {
		t.Fatal(err)
	}
	// The file body (after the header comments) must be the canonical
	// formatting of its own contents.
	reformatted := dsl.FormatAll(parsed)
	again, err := dsl.ParseAll(reformatted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, again) {
		t.Fatal("canonical formatting is unstable")
	}
}
