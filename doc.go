// Package switchmon reproduces "Switches are Monitors Too! Stateful
// Property Monitoring as a Switch Design Criterion" (HotNets-XV, 2016) as
// a runnable Go system: an on-switch stateful property monitor providing
// all ten semantic features the paper derives, a software switch
// dataplane, the seven state-backend approaches of the paper's Table 2,
// the monitored network functions and properties of its Table 1, and
// benchmarks regenerating both tables plus the Sec. 3.3 performance
// claims.
//
// Start with README.md for the architecture overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The root bench_test.go holds one
// benchmark per experiment; examples/ holds runnable scenarios.
package switchmon
